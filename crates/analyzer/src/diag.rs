//! The diagnostic engine shared by the source-lint and artifact
//! passes: stable codes, `file:line` spans, human and JSON rendering,
//! and the allowlist that suppresses accepted findings.

use std::fmt;

/// Stable diagnostic codes. `FTQC001..FTQC009` are source lints,
/// `FTQC010..` are artifact-validation findings. Codes are append-only:
/// a code is never renumbered or reused, so allowlists, CI greps and
/// test fixtures stay valid across releases.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Code {
    /// Allocating construct on a manifest-listed hot path.
    HotPathAlloc,
    /// Telemetry recording call not under an `enabled()` gate in a
    /// manifest-listed hot file.
    UnguardedTelemetry,
    /// `unsafe` block or impl without a `// SAFETY:` comment.
    UndocumentedUnsafe,
    /// DEM file is syntactically malformed.
    DemParse,
    /// DEM file parsed but is semantically invalid (ids out of range,
    /// probabilities outside (0, 1), non-graphlike mechanisms, ...).
    DemSemantic,
    /// Detector round structure is not streamable: round tags must be
    /// contiguous integers and detector ids sorted by round, or
    /// `RoundSchedule` cannot be constructed.
    DemRounds,
    /// `DecodingGraph` CSR arrays are inconsistent.
    GraphCsr,
    /// `Decoder::scratch_capacity()` disagrees with the capacity
    /// re-derived independently from the DEM.
    ScratchCapacity,
    /// Policy spec outside its parameter domain (or unparsable).
    PolicyDomain,
    /// Workload / estimate parameter outside its domain.
    WorkloadDomain,
    /// QASM program failed to parse.
    QasmParse,
    /// Fused streaming window too short for the decoding graph: the
    /// window must cover the longest round-spanning edge, or defects
    /// it connects can be expelled before their partner arrives.
    WindowDomain,
}

impl Code {
    /// The stable textual form, e.g. `"FTQC001"`.
    pub fn as_str(self) -> &'static str {
        match self {
            Code::HotPathAlloc => "FTQC001",
            Code::UnguardedTelemetry => "FTQC002",
            Code::UndocumentedUnsafe => "FTQC003",
            Code::DemParse => "FTQC010",
            Code::DemSemantic => "FTQC011",
            Code::DemRounds => "FTQC012",
            Code::GraphCsr => "FTQC013",
            Code::ScratchCapacity => "FTQC014",
            Code::PolicyDomain => "FTQC015",
            Code::WorkloadDomain => "FTQC016",
            Code::QasmParse => "FTQC017",
            Code::WindowDomain => "FTQC018",
        }
    }

    /// Every defined code, in numeric order.
    pub fn all() -> &'static [Code] {
        &[
            Code::HotPathAlloc,
            Code::UnguardedTelemetry,
            Code::UndocumentedUnsafe,
            Code::DemParse,
            Code::DemSemantic,
            Code::DemRounds,
            Code::GraphCsr,
            Code::ScratchCapacity,
            Code::PolicyDomain,
            Code::WorkloadDomain,
            Code::QasmParse,
            Code::WindowDomain,
        ]
    }

    /// Parses the textual form back into a code.
    pub fn parse(s: &str) -> Option<Code> {
        Code::all().iter().copied().find(|c| c.as_str() == s)
    }
}

impl fmt::Display for Code {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// One finding: a stable code, a `file:line` span and a message.
///
/// `line` is 1-based; line 0 means "whole artifact" (used for findings
/// that have no meaningful line, e.g. a policy-spec string).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable code.
    pub code: Code,
    /// Path (workspace-relative for source lints) or artifact label
    /// (e.g. `<policy>`).
    pub file: String,
    /// 1-based line, or 0 when the finding spans the whole artifact.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    /// Builds a diagnostic.
    pub fn new(
        code: Code,
        file: impl Into<String>,
        line: usize,
        message: impl Into<String>,
    ) -> Diagnostic {
        Diagnostic {
            code,
            file: file.into(),
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{} {}: {}", self.code, self.file, self.message)
        } else {
            write!(
                f,
                "{} {}:{}: {}",
                self.code, self.file, self.line, self.message
            )
        }
    }
}

/// Renders diagnostics one per line in the human format
/// `CODE file:line: message`.
pub fn render_human(diags: &[Diagnostic]) -> String {
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.to_string());
        out.push('\n');
    }
    out
}

/// Renders diagnostics as a JSON array (hand-rolled: the analyzer is
/// dependency-free). Stable field order: `code`, `file`, `line`,
/// `message`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"code\":");
        json_string(&mut out, d.code.as_str());
        out.push_str(",\"file\":");
        json_string(&mut out, &d.file);
        out.push_str(",\"line\":");
        out.push_str(&d.line.to_string());
        out.push_str(",\"message\":");
        json_string(&mut out, &d.message);
        out.push('}');
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push_str("]\n");
    out
}

fn json_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Accepted findings: `CODE path` pairs loaded from an allowlist file.
///
/// File format: one entry per line, `FTQC003 crates/foo/src/bar.rs`;
/// blank lines and `#` comments are ignored. An entry suppresses every
/// diagnostic with that code in that file — allowlisting is per
/// (code, file), not per line, so line churn never invalidates it.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    entries: Vec<(Code, String)>,
}

impl Allowlist {
    /// Parses allowlist text; rejects unknown codes and malformed
    /// lines so a typo cannot silently allow everything.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut parts = line.split_whitespace();
            let code = parts.next().unwrap_or("");
            let path = parts.next().unwrap_or("");
            if path.is_empty() || parts.next().is_some() {
                return Err(format!(
                    "allowlist line {}: expected `CODE path`, got `{line}`",
                    idx + 1
                ));
            }
            let code = Code::parse(code)
                .ok_or_else(|| format!("allowlist line {}: unknown code `{code}`", idx + 1))?;
            entries.push((code, path.to_string()));
        }
        Ok(Allowlist { entries })
    }

    /// Whether `d` is suppressed by this allowlist.
    pub fn allows(&self, d: &Diagnostic) -> bool {
        self.entries
            .iter()
            .any(|(code, path)| *code == d.code && *path == d.file)
    }

    /// Drops every allowlisted diagnostic from `diags`.
    pub fn filter(&self, diags: Vec<Diagnostic>) -> Vec<Diagnostic> {
        diags.into_iter().filter(|d| !self.allows(d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_round_trip_and_stay_ordered() {
        let mut prev = 0u32;
        for &code in Code::all() {
            assert_eq!(Code::parse(code.as_str()), Some(code));
            let n: u32 = code.as_str()[4..].parse().unwrap();
            assert!(n > prev, "codes must be strictly increasing");
            prev = n;
        }
        assert_eq!(Code::parse("FTQC999"), None);
    }

    #[test]
    fn display_formats_with_and_without_line() {
        let with = Diagnostic::new(Code::HotPathAlloc, "src/a.rs", 12, "no");
        assert_eq!(with.to_string(), "FTQC001 src/a.rs:12: no");
        let whole = Diagnostic::new(Code::PolicyDomain, "<policy>", 0, "bad");
        assert_eq!(whole.to_string(), "FTQC015 <policy>: bad");
    }

    #[test]
    fn json_escapes_specials() {
        let d = Diagnostic::new(Code::DemParse, "a\"b", 1, "tab\there");
        let json = render_json(&[d]);
        assert!(json.contains("\"a\\\"b\""));
        assert!(json.contains("tab\\there"));
        assert!(json.starts_with('['));
        assert!(json.trim_end().ends_with(']'));
        assert_eq!(render_json(&[]).trim(), "[]");
    }

    #[test]
    fn allowlist_filters_matching_code_and_file() {
        let allow = Allowlist::parse(
            "# comment\n\nFTQC001 src/a.rs # cold constructor\nFTQC003 src/b.rs\n",
        )
        .unwrap();
        let kept = Diagnostic::new(Code::HotPathAlloc, "src/b.rs", 1, "x");
        let dropped = Diagnostic::new(Code::HotPathAlloc, "src/a.rs", 1, "x");
        assert!(!allow.allows(&kept));
        assert!(allow.allows(&dropped));
        let out = allow.filter(vec![kept.clone(), dropped]);
        assert_eq!(out, vec![kept]);
    }

    #[test]
    fn allowlist_rejects_unknown_code_and_bad_arity() {
        assert!(Allowlist::parse("FTQC099 src/a.rs").is_err());
        assert!(Allowlist::parse("FTQC001").is_err());
        assert!(Allowlist::parse("FTQC001 a b").is_err());
    }
}
