//! FTQC003 fixture: exactly one `unsafe` block without a
//! `// SAFETY:` comment.

pub fn read_slot(ptr: *const u32) -> u32 {
    unsafe { *ptr }
}
