//! FTQC002 fixture: exactly one telemetry call outside an
//! `enabled()` gate.

pub fn scan_round(defects: usize) {
    ftqc_telemetry::counter("fixture/defects", defects as u64);
}
