//! FTQC001 fixture: exactly one hot-path allocation.

pub fn decode_round() {
    let buffer: Vec<u32> = Vec::new();
    drop(buffer);
}
