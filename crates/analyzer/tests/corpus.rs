//! Fixture corpus: every diagnostic code fires exactly once on its
//! fixture, the real workspace is clean under both passes, and the
//! `ftqc-analyzer` binary honours `--deny` / `--json` on a seeded
//! violation tree.

use ftqc_analyzer::artifact::{self, DemFile};
use ftqc_analyzer::lints::lint_file;
use ftqc_analyzer::{Code, Manifest};
use std::path::{Path, PathBuf};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// A manifest that polices every `.rs` fixture on both lists.
fn fixture_manifest() -> Manifest {
    Manifest::parse(
        "[alloc-free]\n\
         alloc_violation.rs\n\
         telemetry_violation.rs\n\
         unsafe_violation.rs\n\
         [telemetry-guarded]\n\
         alloc_violation.rs\n\
         telemetry_violation.rs\n\
         unsafe_violation.rs\n",
    )
    .expect("fixture manifest parses")
}

#[test]
fn each_source_lint_fires_exactly_once() {
    let manifest = fixture_manifest();
    for (file, code) in [
        ("alloc_violation.rs", Code::HotPathAlloc),
        ("telemetry_violation.rs", Code::UnguardedTelemetry),
        ("unsafe_violation.rs", Code::UndocumentedUnsafe),
    ] {
        let diags = lint_file(file, &fixture(file), &manifest);
        assert_eq!(diags.len(), 1, "{file}: {diags:?}");
        assert_eq!(diags[0].code, code, "{file}");
        assert!(diags[0].line > 0, "{file}: diagnostics carry a line");
    }
}

#[test]
fn unlisted_files_only_get_the_unsafe_audit() {
    // The alloc and telemetry lints are manifest-scoped; the unsafe
    // audit applies everywhere.
    let manifest = Manifest::parse("[alloc-free]\n[telemetry-guarded]\n").unwrap();
    assert!(lint_file(
        "alloc_violation.rs",
        &fixture("alloc_violation.rs"),
        &manifest
    )
    .is_empty());
    assert!(lint_file(
        "telemetry_violation.rs",
        &fixture("telemetry_violation.rs"),
        &manifest
    )
    .is_empty());
    let diags = lint_file(
        "unsafe_violation.rs",
        &fixture("unsafe_violation.rs"),
        &manifest,
    );
    assert_eq!(diags.len(), 1);
    assert_eq!(diags[0].code, Code::UndocumentedUnsafe);
}

#[test]
fn each_artifact_code_fires_exactly_once() {
    let diags = DemFile::parse("parse_error.dem", &fixture("parse_error.dem")).unwrap_err();
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, Code::DemParse);

    let file = DemFile::parse("semantic_error.dem", &fixture("semantic_error.dem")).unwrap();
    let diags = file.validate("semantic_error.dem");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, Code::DemSemantic);

    let file = DemFile::parse("round_error.dem", &fixture("round_error.dem")).unwrap();
    let diags = file.validate("round_error.dem");
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, Code::DemRounds);
}

#[test]
fn good_dem_survives_the_full_validation_chain() {
    use ftqc_decoder::Decoder as _;
    let file = DemFile::parse("good.dem", &fixture("good.dem")).unwrap();
    assert!(file.validate("good.dem").is_empty());
    let model = file.to_model();
    let graph = ftqc_decoder::DecodingGraph::from_dem(&model);
    assert!(artifact::validate_graph("good.dem", &graph).is_empty());
    let decoder = ftqc_decoder::UfDecoder::new(graph);
    assert!(artifact::validate_scratch("good.dem", &model, decoder.scratch_capacity()).is_empty());
}

#[test]
fn wrong_scratch_capacity_is_ftqc014() {
    let file = DemFile::parse("good.dem", &fixture("good.dem")).unwrap();
    let model = file.to_model();
    let wrong = ftqc_decoder::ScratchCapacity {
        nodes: 99,
        edges: 1,
        exact_limit: 0,
    };
    let diags = artifact::validate_scratch("good.dem", &model, wrong);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, Code::ScratchCapacity);
}

#[test]
fn short_fused_window_is_ftqc018() {
    let file = DemFile::parse("good.dem", &fixture("good.dem")).unwrap();
    let mut rounds: Vec<(u32, u32)> = file
        .detectors
        .iter()
        .map(|&(_, id, r)| (id, r as u32))
        .collect();
    rounds.sort_unstable();
    let round_of = |d: u32| rounds[d as usize].1;
    let graph = ftqc_decoder::DecodingGraph::from_dem(&file.to_model());
    // good.dem spans two rounds with a cross-round edge: window 2 is
    // the minimum usable fused window, window 1 fires FTQC018 once.
    assert!(artifact::validate_window("good.dem", &graph, round_of, 2).is_empty());
    let diags = artifact::validate_window("good.dem", &graph, round_of, 1);
    assert_eq!(diags.len(), 1, "{diags:?}");
    assert_eq!(diags[0].code, Code::WindowDomain);
}

/// The self-check the CI `analyzer` job enforces: both passes over the
/// real workspace report nothing.
#[test]
fn real_workspace_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap();
    let diags = ftqc_analyzer::lint_tree(root).expect("workspace lint runs");
    assert!(diags.is_empty(), "workspace not clean:\n{diags:?}");
}

/// A throwaway tree with one seeded violation per source-lint code.
fn seeded_tree(tag: &str) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("ftqc-analyzer-corpus-{tag}-{}", std::process::id()));
    let src = dir.join("src");
    std::fs::create_dir_all(&src).unwrap();
    std::fs::write(
        dir.join(ftqc_analyzer::MANIFEST_FILE),
        "[alloc-free]\nsrc/hot.rs\n[telemetry-guarded]\nsrc/hot.rs\n",
    )
    .unwrap();
    std::fs::write(
        src.join("hot.rs"),
        "pub fn decode() {\n    let v: Vec<u32> = Vec::new();\n    drop(v);\n    \
         ftqc_telemetry::counter(\"x\", 1);\n    unsafe { core::hint::unreachable_unchecked() }\n}\n",
    )
    .unwrap();
    dir
}

#[test]
fn bin_denies_a_seeded_violation_tree() {
    let dir = seeded_tree("deny");
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_ftqc-analyzer"))
        .args(["lint", "--deny", "--root"])
        .arg(&dir)
        .output()
        .expect("run ftqc-analyzer");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert_eq!(out.status.code(), Some(1), "stdout: {stdout}");
    for code in ["FTQC001", "FTQC002", "FTQC003"] {
        assert!(stdout.contains(code), "missing {code} in: {stdout}");
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn bin_emits_json_and_allowlist_suppresses() {
    let dir = seeded_tree("json");
    let exe = env!("CARGO_BIN_EXE_ftqc-analyzer");
    let out = std::process::Command::new(exe)
        .args(["lint", "--json", "--root"])
        .arg(&dir)
        .output()
        .expect("run ftqc-analyzer");
    // Without --deny, findings are reported but the exit is 0.
    assert_eq!(out.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.trim_start().starts_with('['), "json: {stdout}");
    assert!(stdout.contains("\"code\""), "json: {stdout}");

    // Allowlisting every code for the file silences the run entirely.
    std::fs::write(
        dir.join(ftqc_analyzer::ALLOWLIST_FILE),
        "FTQC001 src/hot.rs\nFTQC002 src/hot.rs\nFTQC003 src/hot.rs\n",
    )
    .unwrap();
    let out = std::process::Command::new(exe)
        .args(["lint", "--deny", "--root"])
        .arg(&dir)
        .output()
        .expect("run ftqc-analyzer");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stdout: {}",
        String::from_utf8_lossy(&out.stdout)
    );
    std::fs::remove_dir_all(&dir).ok();
}
