//! Batched Pauli-frame simulation.

use ftqc_circuit::{Circuit, Op, Qubit};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const WORD_BITS: usize = 64;

/// A batched Pauli-frame simulator.
///
/// Tracks, for every qubit, the X and Z components of the accumulated
/// error frame for `shots` Monte-Carlo shots simultaneously (64 shots
/// per `u64` word). Clifford gates permute frames in `O(words)` bit
/// operations; noise channels are sampled sparsely with geometric skips,
/// so the cost of noise scales with the number of *errors*, not the
/// number of shots.
///
/// Measurement records store the frame-induced *flip* of each
/// measurement relative to the noiseless reference, which is exactly
/// what detectors and observables consume — so detector samples come out
/// directly as syndrome bits.
#[derive(Debug)]
pub struct FrameSimulator {
    shots: usize,
    words: usize,
    xs: Vec<u64>,
    zs: Vec<u64>,
    records: Vec<u64>,
    num_records: usize,
    rng: SmallRng,
}

impl FrameSimulator {
    /// Creates a simulator for `num_qubits` qubits and a batch of
    /// `shots` shots, seeded deterministically.
    ///
    /// # Panics
    ///
    /// Panics if `shots == 0`.
    pub fn new(num_qubits: u32, shots: usize, seed: u64) -> FrameSimulator {
        let mut sim = FrameSimulator::empty();
        sim.reset(num_qubits, shots, seed);
        sim
    }

    /// A simulator with no capacity; call
    /// [`reset`](FrameSimulator::reset) before use. The starting point
    /// for callers that keep one simulator per worker thread and reuse
    /// its buffers across batches.
    pub fn empty() -> FrameSimulator {
        // analyzer: allow(alloc) -- constructor: empty vecs, grown once
        // by `reset` and reused across batches.
        FrameSimulator {
            shots: 0,
            words: 0,
            xs: Vec::new(),
            zs: Vec::new(),
            records: Vec::new(),
            num_records: 0,
            rng: SmallRng::seed_from_u64(0),
        }
        // analyzer: end-allow(alloc)
    }

    /// Re-arms the simulator for a fresh batch, reusing the frame and
    /// record buffers: once they have grown to a circuit's working-set
    /// size, steady-state batches allocate nothing here.
    ///
    /// # Panics
    ///
    /// Panics if `shots == 0`.
    pub fn reset(&mut self, num_qubits: u32, shots: usize, seed: u64) {
        assert!(shots > 0, "batch must contain at least one shot");
        let words = shots.div_ceil(WORD_BITS);
        let frame_words = num_qubits as usize * words;
        self.shots = shots;
        self.words = words;
        self.xs.clear();
        self.xs.resize(frame_words, 0);
        self.zs.clear();
        self.zs.resize(frame_words, 0);
        self.records.clear();
        self.num_records = 0;
        self.rng = SmallRng::seed_from_u64(seed);
    }

    /// Number of shots in this batch.
    pub fn shots(&self) -> usize {
        self.shots
    }

    /// Runs every operation of `circuit` (detectors and observables are
    /// ignored here; use [`sample_batch`] to collect them).
    pub fn run(&mut self, circuit: &Circuit) {
        for op in circuit.ops() {
            self.apply(op);
        }
    }

    /// The measurement-flip record for measurement index `rec` as a word
    /// row.
    pub fn record_row(&self, rec: usize) -> &[u64] {
        &self.records[rec * self.words..(rec + 1) * self.words]
    }

    /// Number of measurement records produced so far.
    pub fn num_records(&self) -> usize {
        self.num_records
    }

    fn apply(&mut self, op: &Op) {
        match op {
            Op::H(qs) => {
                for &q in qs {
                    let (w, q) = (self.words, q as usize);
                    for i in 0..w {
                        std::mem::swap(&mut self.xs[q * w + i], &mut self.zs[q * w + i]);
                    }
                }
            }
            Op::S(qs) => {
                for &q in qs {
                    let (w, q) = (self.words, q as usize);
                    for i in 0..w {
                        self.zs[q * w + i] ^= self.xs[q * w + i];
                    }
                }
            }
            // Deterministic Pauli gates are part of the reference and do
            // not move error frames.
            Op::X(_) | Op::Y(_) | Op::Z(_) => {}
            Op::Cx(pairs) => {
                let w = self.words;
                for &(c, t) in pairs {
                    let (c, t) = (c as usize, t as usize);
                    for i in 0..w {
                        self.xs[t * w + i] ^= self.xs[c * w + i];
                        self.zs[c * w + i] ^= self.zs[t * w + i];
                    }
                }
            }
            Op::ResetZ(qs) | Op::ResetX(qs) => {
                for &q in qs {
                    let (w, q) = (self.words, q as usize);
                    self.xs[q * w..(q + 1) * w].fill(0);
                    self.zs[q * w..(q + 1) * w].fill(0);
                }
            }
            Op::MeasureZ {
                qubits,
                flip_probability,
            } => {
                for &q in qubits {
                    self.record_measurement(q, Basis::Z, *flip_probability, false);
                }
            }
            Op::MeasureX {
                qubits,
                flip_probability,
            } => {
                for &q in qubits {
                    self.record_measurement(q, Basis::X, *flip_probability, false);
                }
            }
            Op::MeasureReset {
                qubits,
                flip_probability,
            } => {
                for &q in qubits {
                    self.record_measurement(q, Basis::Z, *flip_probability, true);
                }
            }
            Op::PauliChannel { qubits, px, py, pz } => {
                let pt = px + py + pz;
                let (px, py) = (*px, *py);
                for &q in qubits {
                    self.for_each_hit(pt, |sim, shot| {
                        let u: f64 = sim.rng.gen::<f64>() * pt;
                        if u < px {
                            sim.flip_x(q, shot);
                        } else if u < px + py {
                            sim.flip_x(q, shot);
                            sim.flip_z(q, shot);
                        } else {
                            sim.flip_z(q, shot);
                        }
                    });
                }
            }
            Op::Depolarize1 { qubits, p } => {
                for &q in qubits {
                    self.for_each_hit(*p, |sim, shot| {
                        match sim.rng.gen_range(1..4u8) {
                            1 => sim.flip_x(q, shot),
                            2 => {
                                sim.flip_x(q, shot);
                                sim.flip_z(q, shot);
                            }
                            _ => sim.flip_z(q, shot),
                        };
                    });
                }
            }
            Op::Depolarize2 { pairs, p } => {
                for &(a, b) in pairs {
                    self.for_each_hit(*p, |sim, shot| {
                        let k = sim.rng.gen_range(1..16u8);
                        let (pa, pb) = (k >> 2, k & 3);
                        sim.apply_pauli_code(a, pa, shot);
                        sim.apply_pauli_code(b, pb, shot);
                    });
                }
            }
            Op::Detector { .. } | Op::ObservableInclude { .. } => {}
        }
    }

    /// Appends a measurement record row for qubit `q`, applying classical
    /// flip noise, and clears the appropriate post-measurement frame
    /// components (the measured-basis phase component is unphysical after
    /// the measurement and must not propagate; a reset clears both).
    fn record_measurement(&mut self, q: Qubit, basis: Basis, flip_p: f64, reset: bool) {
        let w = self.words;
        let qi = q as usize;
        let start = self.records.len();
        match basis {
            Basis::Z => self
                .records
                .extend_from_slice(&self.xs[qi * w..(qi + 1) * w]),
            Basis::X => self
                .records
                .extend_from_slice(&self.zs[qi * w..(qi + 1) * w]),
        }
        self.num_records += 1;
        if flip_p > 0.0 {
            self.for_each_hit(flip_p, |sim, shot| {
                sim.records[start + shot / WORD_BITS] ^= 1u64 << (shot % WORD_BITS);
            });
        }
        match basis {
            Basis::Z => {
                self.zs[qi * w..(qi + 1) * w].fill(0);
                if reset {
                    self.xs[qi * w..(qi + 1) * w].fill(0);
                }
            }
            Basis::X => {
                self.xs[qi * w..(qi + 1) * w].fill(0);
                if reset {
                    self.zs[qi * w..(qi + 1) * w].fill(0);
                }
            }
        }
    }

    #[inline]
    fn flip_x(&mut self, q: Qubit, shot: usize) {
        self.xs[q as usize * self.words + shot / WORD_BITS] ^= 1u64 << (shot % WORD_BITS);
    }

    #[inline]
    fn flip_z(&mut self, q: Qubit, shot: usize) {
        self.zs[q as usize * self.words + shot / WORD_BITS] ^= 1u64 << (shot % WORD_BITS);
    }

    #[inline]
    fn apply_pauli_code(&mut self, q: Qubit, code: u8, shot: usize) {
        // 0 = I, 1 = X, 2 = Y, 3 = Z.
        if code == 1 || code == 2 {
            self.flip_x(q, shot);
        }
        if code == 2 || code == 3 {
            self.flip_z(q, shot);
        }
    }

    /// Visits each shot where an event of probability `p` occurs, using
    /// geometric skip sampling so the cost is proportional to the number
    /// of events.
    fn for_each_hit(&mut self, p: f64, mut f: impl FnMut(&mut Self, usize)) {
        if p <= 0.0 {
            return;
        }
        if p >= 1.0 {
            for shot in 0..self.shots {
                f(self, shot);
            }
            return;
        }
        let ln_skip = (1.0 - p).ln();
        let mut shot = 0usize;
        loop {
            let u: f64 = 1.0 - self.rng.gen::<f64>(); // (0, 1]
            let skip = (u.ln() / ln_skip).floor();
            if !skip.is_finite() || skip >= (self.shots - shot) as f64 {
                return;
            }
            shot += skip as usize;
            f(self, shot);
            shot += 1;
            if shot >= self.shots {
                return;
            }
        }
    }
}

enum Basis {
    X,
    Z,
}

/// Detector and observable flip samples for one batch of shots.
///
/// Rows are bit-packed across shots: bit `s` of word `s / 64` in row `d`
/// is detector `d`'s value in shot `s`.
#[derive(Debug, Clone)]
pub struct SampleBatch {
    /// Number of shots in the batch.
    pub shots: usize,
    /// Words per row (`ceil(shots / 64)`).
    pub words: usize,
    /// `num_detectors` rows of detector flips.
    pub detectors: Vec<u64>,
    /// `num_observables` rows of observable flips.
    pub observables: Vec<u64>,
    /// Number of detector rows.
    pub num_detectors: usize,
    /// Number of observable rows.
    pub num_observables: usize,
}

impl SampleBatch {
    /// An empty batch; filled by [`sample_batch_with`]. The starting
    /// point for callers that keep one batch per worker thread and
    /// reuse its rows across samples.
    pub fn empty() -> SampleBatch {
        // analyzer: allow(alloc) -- constructor: empty rows, grown once
        // by `sample_batch_with` and reused across batches.
        SampleBatch {
            shots: 0,
            words: 0,
            detectors: Vec::new(),
            observables: Vec::new(),
            num_detectors: 0,
            num_observables: 0,
        }
        // analyzer: end-allow(alloc)
    }

    /// Detector `d`'s value in shot `s`.
    #[inline]
    pub fn detector(&self, d: usize, s: usize) -> bool {
        (self.detectors[d * self.words + s / WORD_BITS] >> (s % WORD_BITS)) & 1 == 1
    }

    /// Observable `o`'s flip in shot `s`.
    #[inline]
    pub fn observable(&self, o: usize, s: usize) -> bool {
        (self.observables[o * self.words + s / WORD_BITS] >> (s % WORD_BITS)) & 1 == 1
    }

    /// The flagged (fired) detector indices of shot `s`, ascending.
    pub fn flagged_detectors(&self, s: usize) -> Vec<u32> {
        // analyzer: allow(alloc) -- convenience wrapper; the hot loop
        // uses `flagged_detectors_into` with a reused buffer.
        let mut out = Vec::new();
        // analyzer: end-allow(alloc)
        self.flagged_detectors_into(s, &mut out);
        out
    }

    /// [`flagged_detectors`](SampleBatch::flagged_detectors) into a
    /// reusable buffer (cleared first) — the per-shot syndrome
    /// extraction of the decode hot loop, allocation-free once `out`
    /// has grown to the heaviest syndrome seen.
    pub fn flagged_detectors_into(&self, s: usize, out: &mut Vec<u32>) {
        out.clear();
        for d in 0..self.num_detectors {
            if self.detector(d, s) {
                out.push(d as u32);
            }
        }
    }

    /// Total number of shots in which detector `d` fired.
    pub fn count_detector_flips(&self, d: usize) -> u64 {
        let mut total = 0u64;
        for w in 0..self.words {
            let mut word = self.detectors[d * self.words + w];
            // Mask out padding bits beyond `shots` in the last word (the
            // simulator never sets them, but be defensive).
            let valid = self.shots.saturating_sub(w * WORD_BITS);
            if valid < WORD_BITS {
                word &= (1u64 << valid) - 1;
            }
            total += word.count_ones() as u64;
        }
        total
    }

    /// Syndrome Hamming weight (number of flagged detectors) of shot `s`.
    ///
    /// One strided bit probe per detector; batch consumers that visit
    /// many shots should prefer a [`SyndromeScanner`], which amortizes
    /// a word-wise transpose across each 64-shot block.
    pub fn hamming_weight(&self, s: usize) -> usize {
        (0..self.num_detectors)
            .filter(|&d| self.detector(d, s))
            .count()
    }
}

/// Word-wise syndrome extraction over a [`SampleBatch`].
///
/// The batch stores detector rows bit-packed *across shots*, so the
/// per-shot extraction ([`SampleBatch::flagged_detectors_into`]) is a
/// strided single-bit probe per detector — `num_detectors` cache lines
/// touched per shot. The scanner instead transposes one 64-shot block
/// of the detector bit-matrix at a time (64×64 bit-block transpose)
/// into shot-major rows, after which extracting a shot's syndrome is a
/// dense `trailing_zeros` scan over `ceil(num_detectors / 64)` words
/// and its Hamming weight is a row of popcounts. The transpose is
/// amortized over the up-to-64 shots of its block — exactly how the
/// decode loop visits them.
///
/// Usage: call [`begin_batch`](SyndromeScanner::begin_batch) once per
/// batch (this invalidates any cached block), then
/// [`flagged_into`](SyndromeScanner::flagged_into) /
/// [`hamming_weight`](SyndromeScanner::hamming_weight) per shot.
/// Results are bit-identical to the per-bit paths. The scanner reuses
/// its transpose buffer across batches, so steady-state scanning
/// allocates nothing.
#[derive(Debug, Default)]
pub struct SyndromeScanner {
    /// Shot-major transposed block: 64 rows (one per shot lane) of
    /// `det_words` words; bit `d % 64` of word `d / 64` in row `lane`
    /// is detector `d`'s value for that lane's shot.
    t: Vec<u64>,
    det_words: usize,
    num_detectors: usize,
    /// Block index currently in `t` (`usize::MAX` = none).
    loaded: usize,
}

impl SyndromeScanner {
    /// An empty scanner; sized by the first
    /// [`begin_batch`](SyndromeScanner::begin_batch).
    pub fn new() -> SyndromeScanner {
        // analyzer: allow(alloc) -- constructor: the transpose buffer
        // is empty until `begin_batch` sizes it.
        SyndromeScanner {
            t: Vec::new(),
            det_words: 0,
            num_detectors: 0,
            loaded: usize::MAX,
        }
        // analyzer: end-allow(alloc)
    }

    /// Re-arms the scanner for `batch`, invalidating any cached block
    /// (always call when switching to a new batch, even one of the same
    /// shape — the scanner cannot tell two batches apart by itself).
    pub fn begin_batch(&mut self, batch: &SampleBatch) {
        self.det_words = batch.num_detectors.div_ceil(WORD_BITS);
        self.num_detectors = batch.num_detectors;
        self.t.clear();
        self.t.resize(WORD_BITS * self.det_words, 0);
        self.loaded = usize::MAX;
    }

    /// Transposes shot-block `block` of `batch` into `t`, unless it is
    /// the block already loaded.
    fn load_block(&mut self, batch: &SampleBatch, block: usize) {
        if self.loaded == block {
            return;
        }
        // Only the uncached path is traced: the cached early-return above
        // runs once per shot and must stay free of even a relaxed load.
        let span = ftqc_telemetry::span("sim/scan_block");
        debug_assert_eq!(
            self.num_detectors, batch.num_detectors,
            "SyndromeScanner used without begin_batch for this batch"
        );
        let mut buf = [0u64; WORD_BITS];
        for g in 0..self.det_words {
            for (r, slot) in buf.iter_mut().enumerate() {
                let d = g * WORD_BITS + r;
                *slot = if d < batch.num_detectors {
                    batch.detectors[d * batch.words + block]
                } else {
                    0
                };
            }
            transpose64(&mut buf);
            for (r, &word) in buf.iter().enumerate() {
                self.t[r * self.det_words + g] = word;
            }
        }
        self.loaded = block;
        span.end_with(&[ftqc_telemetry::Arg::new(
            "detectors",
            self.num_detectors as f64,
        )]);
    }

    /// The flagged detector indices of shot `s`, ascending, into a
    /// reusable buffer (cleared first). Bit-identical to
    /// [`SampleBatch::flagged_detectors_into`].
    pub fn flagged_into(&mut self, batch: &SampleBatch, s: usize, out: &mut Vec<u32>) {
        out.clear();
        self.load_block(batch, s / WORD_BITS);
        let lane = s % WORD_BITS;
        let row = &self.t[lane * self.det_words..(lane + 1) * self.det_words];
        for (w, &word) in row.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                out.push((w * WORD_BITS) as u32 + bits.trailing_zeros());
                bits &= bits - 1;
            }
        }
        if ftqc_telemetry::enabled() {
            ftqc_telemetry::counter("sim/defects", out.len() as u64);
        }
    }

    /// The flagged detector indices of shot `s` in `lo..hi`, ascending,
    /// **appended** to `out` (not cleared — a round made of several
    /// index runs accumulates across calls; clear between shots). This
    /// is the round-streaming primitive: a round's detectors are a
    /// handful of contiguous index ranges, and each range costs a
    /// masked word scan over the already-transposed shot row rather
    /// than a fresh pass over the whole syndrome.
    ///
    /// `hi` is clamped to the batch's detector count; an empty or
    /// inverted range appends nothing.
    pub fn flagged_range_into(
        &mut self,
        batch: &SampleBatch,
        s: usize,
        lo: u32,
        hi: u32,
        out: &mut Vec<u32>,
    ) {
        let hi = (hi as usize).min(batch.num_detectors);
        let lo = lo as usize;
        if lo >= hi {
            return;
        }
        self.load_block(batch, s / WORD_BITS);
        let lane = s % WORD_BITS;
        let row = &self.t[lane * self.det_words..(lane + 1) * self.det_words];
        let (w0, w1) = (lo / WORD_BITS, (hi - 1) / WORD_BITS);
        for (w, &row_word) in row.iter().enumerate().take(w1 + 1).skip(w0) {
            let mut bits = row_word;
            if w == w0 {
                bits &= !0u64 << (lo % WORD_BITS);
            }
            if w == w1 && !hi.is_multiple_of(WORD_BITS) {
                bits &= (1u64 << (hi % WORD_BITS)) - 1;
            }
            while bits != 0 {
                out.push((w * WORD_BITS) as u32 + bits.trailing_zeros());
                bits &= bits - 1;
            }
        }
    }

    /// Syndrome Hamming weight of shot `s` (a row of popcounts).
    /// Bit-identical to [`SampleBatch::hamming_weight`].
    pub fn hamming_weight(&mut self, batch: &SampleBatch, s: usize) -> usize {
        self.load_block(batch, s / WORD_BITS);
        let lane = s % WORD_BITS;
        self.t[lane * self.det_words..(lane + 1) * self.det_words]
            .iter()
            .map(|w| w.count_ones() as usize)
            .sum()
    }
}

/// In-place 64×64 bit-matrix transpose (Hacker's Delight 7-3, adjusted
/// for LSB-first columns): bit `i` of output word `k` equals bit `k`
/// of input word `i`.
fn transpose64(a: &mut [u64; 64]) {
    let mut j = 32usize;
    let mut m = 0x0000_0000_FFFF_FFFFu64;
    while j != 0 {
        let mut k = 0usize;
        while k < 64 {
            let t = ((a[k] >> j) ^ a[k | j]) & m;
            a[k] ^= t << j;
            a[k | j] ^= t;
            k = ((k | j) + 1) & !j;
        }
        j >>= 1;
        m ^= m << j;
    }
}

/// Samples one batch of `shots` shots of `circuit`, returning detector
/// and observable flips.
///
/// # Panics
///
/// Panics if `shots == 0`.
pub fn sample_batch(circuit: &Circuit, shots: usize, seed: u64) -> SampleBatch {
    let mut sim = FrameSimulator::empty();
    let mut out = SampleBatch::empty();
    sample_batch_with(circuit, shots, seed, &mut sim, &mut out);
    out
}

/// [`sample_batch`] into caller-owned buffers: `sim` and `out` are
/// reset and refilled, so a worker thread that keeps both across
/// batches performs zero steady-state heap allocations per batch.
/// Produces bit-identical samples to [`sample_batch`] for the same
/// `(circuit, shots, seed)`.
///
/// # Panics
///
/// Panics if `shots == 0`.
pub fn sample_batch_with(
    circuit: &Circuit,
    shots: usize,
    seed: u64,
    sim: &mut FrameSimulator,
    out: &mut SampleBatch,
) {
    let span = ftqc_telemetry::span("sim/sample_batch");
    sim.reset(circuit.num_qubits(), shots, seed);
    sim.run(circuit);
    let words = sim.words;
    let num_detectors = circuit.num_detectors() as usize;
    let num_observables = circuit.num_observables() as usize;
    out.shots = shots;
    out.words = words;
    out.num_detectors = num_detectors;
    out.num_observables = num_observables;
    out.detectors.clear();
    out.detectors.resize(num_detectors * words, 0);
    out.observables.clear();
    out.observables.resize(num_observables * words, 0);
    let mut d = 0usize;
    for op in circuit.ops() {
        match op {
            Op::Detector { records, .. } => {
                for r in records {
                    let row = sim.record_row(r.0 as usize);
                    let dst = &mut out.detectors[d * words..(d + 1) * words];
                    for (dst, src) in dst.iter_mut().zip(row) {
                        *dst ^= src;
                    }
                }
                d += 1;
            }
            Op::ObservableInclude {
                observable,
                records,
            } => {
                let o = *observable as usize;
                for r in records {
                    let row = sim.record_row(r.0 as usize);
                    let dst = &mut out.observables[o * words..(o + 1) * words];
                    for (dst, src) in dst.iter_mut().zip(row) {
                        *dst ^= src;
                    }
                }
            }
            _ => {}
        }
    }
    if ftqc_telemetry::enabled() {
        ftqc_telemetry::counter("sim/shots", shots as u64);
    }
    span.end_with(&[
        ftqc_telemetry::Arg::new("shots", shots as f64),
        ftqc_telemetry::Arg::new("detectors", num_detectors as f64),
    ]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqc_circuit::{DetectorBasis, MeasRef};

    fn flip_rate(batch: &SampleBatch, det: usize) -> f64 {
        batch.count_detector_flips(det) as f64 / batch.shots as f64
    }

    #[test]
    fn noiseless_detectors_never_fire() {
        let mut c = Circuit::new(2);
        c.push(Op::ResetZ(vec![0, 1]));
        c.push(Op::h([0]));
        c.push(Op::cx([(0, 1)]));
        c.push(Op::measure_z([0, 1], 0.0));
        c.push(Op::detector([MeasRef(0), MeasRef(1)], DetectorBasis::Z));
        let b = sample_batch(&c, 640, 1);
        assert_eq!(b.count_detector_flips(0), 0);
    }

    #[test]
    fn x_error_flips_z_measurement() {
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(vec![0]));
        c.push(Op::PauliChannel {
            qubits: vec![0],
            px: 1.0,
            py: 0.0,
            pz: 0.0,
        });
        c.push(Op::measure_z([0], 0.0));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        let b = sample_batch(&c, 128, 7);
        assert_eq!(b.count_detector_flips(0), 128);
    }

    #[test]
    fn z_error_does_not_flip_z_measurement() {
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(vec![0]));
        c.push(Op::PauliChannel {
            qubits: vec![0],
            px: 0.0,
            py: 0.0,
            pz: 1.0,
        });
        c.push(Op::measure_z([0], 0.0));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        let b = sample_batch(&c, 128, 7);
        assert_eq!(b.count_detector_flips(0), 0);
    }

    #[test]
    fn z_error_flips_x_measurement_through_h() {
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(vec![0]));
        c.push(Op::h([0]));
        c.push(Op::PauliChannel {
            qubits: vec![0],
            px: 0.0,
            py: 0.0,
            pz: 1.0,
        });
        c.push(Op::h([0]));
        c.push(Op::measure_z([0], 0.0));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        let b = sample_batch(&c, 64, 3);
        assert_eq!(b.count_detector_flips(0), 64);
    }

    #[test]
    fn cx_propagates_x_frames() {
        // X on control propagates to target.
        let mut c = Circuit::new(2);
        c.push(Op::ResetZ(vec![0, 1]));
        c.push(Op::PauliChannel {
            qubits: vec![0],
            px: 1.0,
            py: 0.0,
            pz: 0.0,
        });
        c.push(Op::cx([(0, 1)]));
        c.push(Op::measure_z([1], 0.0));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        let b = sample_batch(&c, 64, 3);
        assert_eq!(b.count_detector_flips(0), 64);
    }

    #[test]
    fn reset_clears_frames() {
        let mut c = Circuit::new(1);
        c.push(Op::PauliChannel {
            qubits: vec![0],
            px: 1.0,
            py: 0.0,
            pz: 0.0,
        });
        c.push(Op::ResetZ(vec![0]));
        c.push(Op::measure_z([0], 0.0));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        let b = sample_batch(&c, 64, 3);
        assert_eq!(b.count_detector_flips(0), 0);
    }

    #[test]
    fn measurement_flip_noise_has_right_rate() {
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(vec![0]));
        c.push(Op::measure_z([0], 0.1));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        let b = sample_batch(&c, 100_000, 99);
        let r = flip_rate(&b, 0);
        assert!((r - 0.1).abs() < 0.01, "rate {r}");
    }

    #[test]
    fn depolarize1_rate_is_two_thirds_on_z_basis() {
        // Only X and Y components (2/3 of events) flip a Z measurement.
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(vec![0]));
        c.push(Op::Depolarize1 {
            qubits: vec![0],
            p: 0.3,
        });
        c.push(Op::measure_z([0], 0.0));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        let b = sample_batch(&c, 100_000, 5);
        let r = flip_rate(&b, 0);
        assert!((r - 0.2).abs() < 0.01, "rate {r}");
    }

    #[test]
    fn depolarize2_rate_matches_marginal() {
        // P(first qubit has X or Y) = 8/15 * p.
        let mut c = Circuit::new(2);
        c.push(Op::ResetZ(vec![0, 1]));
        c.push(Op::Depolarize2 {
            pairs: vec![(0, 1)],
            p: 0.15,
        });
        c.push(Op::measure_z([0], 0.0));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        let b = sample_batch(&c, 200_000, 11);
        let r = flip_rate(&b, 0);
        let expect = 0.15 * 8.0 / 15.0;
        assert!((r - expect).abs() < 0.005, "rate {r} vs {expect}");
    }

    #[test]
    fn observables_accumulate_records() {
        let mut c = Circuit::new(2);
        c.push(Op::ResetZ(vec![0, 1]));
        c.push(Op::PauliChannel {
            qubits: vec![0],
            px: 1.0,
            py: 0.0,
            pz: 0.0,
        });
        c.push(Op::measure_z([0, 1], 0.0));
        c.push(Op::ObservableInclude {
            observable: 0,
            records: vec![MeasRef(0), MeasRef(1)],
        });
        let b = sample_batch(&c, 64, 1);
        assert!(b.observable(0, 0));
    }

    #[test]
    fn measure_reset_clears_state_but_records_flip() {
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(vec![0]));
        c.push(Op::PauliChannel {
            qubits: vec![0],
            px: 1.0,
            py: 0.0,
            pz: 0.0,
        });
        c.push(Op::measure_reset([0], 0.0));
        c.push(Op::measure_z([0], 0.0));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        c.push(Op::detector([MeasRef(1)], DetectorBasis::Z));
        let b = sample_batch(&c, 64, 1);
        assert_eq!(b.count_detector_flips(0), 64);
        assert_eq!(b.count_detector_flips(1), 0);
    }

    #[test]
    fn batch_not_multiple_of_64_counts_correctly() {
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(vec![0]));
        c.push(Op::PauliChannel {
            qubits: vec![0],
            px: 1.0,
            py: 0.0,
            pz: 0.0,
        });
        c.push(Op::measure_z([0], 0.0));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        let b = sample_batch(&c, 70, 1);
        assert_eq!(b.count_detector_flips(0), 70);
    }

    #[test]
    fn reused_buffers_sample_identically() {
        // A worker reusing one simulator + batch across differently
        // sized batches must reproduce the one-shot API bit for bit.
        let mut big = Circuit::new(2);
        big.push(Op::ResetZ(vec![0, 1]));
        big.push(Op::Depolarize1 {
            qubits: vec![0, 1],
            p: 0.1,
        });
        big.push(Op::measure_z([0, 1], 0.0));
        big.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        big.push(Op::detector([MeasRef(1)], DetectorBasis::Z));
        let mut sim = FrameSimulator::empty();
        let mut out = SampleBatch::empty();
        for (shots, seed) in [(700usize, 3u64), (64, 9), (1000, 3), (70, 1)] {
            sample_batch_with(&big, shots, seed, &mut sim, &mut out);
            let fresh = sample_batch(&big, shots, seed);
            assert_eq!(out.detectors, fresh.detectors);
            assert_eq!(out.observables, fresh.observables);
            assert_eq!(out.shots, fresh.shots);
            assert_eq!(out.words, fresh.words);
        }
    }

    #[test]
    fn flagged_into_matches_allocating_path() {
        let mut c = Circuit::new(2);
        c.push(Op::ResetZ(vec![0, 1]));
        c.push(Op::Depolarize1 {
            qubits: vec![0, 1],
            p: 0.2,
        });
        c.push(Op::measure_z([0, 1], 0.0));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        c.push(Op::detector([MeasRef(1)], DetectorBasis::Z));
        let b = sample_batch(&c, 300, 12);
        let mut buf = vec![99u32; 7]; // stale contents must be cleared
        for s in 0..b.shots {
            b.flagged_detectors_into(s, &mut buf);
            assert_eq!(buf, b.flagged_detectors(s));
        }
    }

    /// A wide noisy circuit: one detector per qubit, so the detector
    /// count can exceed one word and padding lanes get exercised.
    fn wide_circuit(num_detectors: u32) -> Circuit {
        let mut c = Circuit::new(num_detectors);
        c.push(Op::ResetZ((0..num_detectors).collect()));
        c.push(Op::Depolarize1 {
            qubits: (0..num_detectors).collect(),
            p: 0.3,
        });
        c.push(Op::measure_z((0..num_detectors).collect::<Vec<_>>(), 0.0));
        for k in 0..num_detectors {
            c.push(Op::detector([MeasRef(k)], DetectorBasis::Z));
        }
        c
    }

    #[test]
    fn scanner_matches_per_bit_extraction() {
        // Shots and detectors both deliberately not multiples of 64, so
        // the last shot block and last detector word are partial.
        let c = wide_circuit(70);
        let b = sample_batch(&c, 300, 12);
        let mut scanner = SyndromeScanner::new();
        scanner.begin_batch(&b);
        let mut fast = vec![99u32; 5]; // stale contents must be cleared
        for s in 0..b.shots {
            scanner.flagged_into(&b, s, &mut fast);
            assert_eq!(fast, b.flagged_detectors(s), "shot {s}");
            assert_eq!(scanner.hamming_weight(&b, s), b.hamming_weight(s));
        }
    }

    #[test]
    fn scanner_handles_out_of_order_shots_and_new_batches() {
        let c = wide_circuit(65);
        let mut scanner = SyndromeScanner::new();
        let mut fast = Vec::new();
        for seed in [1u64, 2, 3] {
            let b = sample_batch(&c, 130, seed);
            scanner.begin_batch(&b); // invalidates the previous batch's block
                                     // Jump across blocks both ways: each jump reloads.
            for &s in &[129usize, 0, 64, 1, 128, 63, 65] {
                scanner.flagged_into(&b, s, &mut fast);
                assert_eq!(fast, b.flagged_detectors(s), "seed {seed} shot {s}");
            }
        }
    }

    #[test]
    fn transpose64_round_trips_and_transposes() {
        // Deterministic pseudo-random matrix via xorshift.
        let mut x = 0x243F_6A88_85A3_08D3u64;
        let mut a = [0u64; 64];
        for slot in &mut a {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            *slot = x;
        }
        let orig = a;
        transpose64(&mut a);
        for (k, &row) in a.iter().enumerate() {
            for (i, &col) in orig.iter().enumerate() {
                assert_eq!((row >> i) & 1, (col >> k) & 1, "bit ({k},{i})");
            }
        }
        transpose64(&mut a);
        assert_eq!(a, orig, "transpose is an involution");
    }

    #[test]
    fn hamming_weight_counts_flagged() {
        let mut c = Circuit::new(2);
        c.push(Op::ResetZ(vec![0, 1]));
        c.push(Op::PauliChannel {
            qubits: vec![0, 1],
            px: 1.0,
            py: 0.0,
            pz: 0.0,
        });
        c.push(Op::measure_z([0, 1], 0.0));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        c.push(Op::detector([MeasRef(1)], DetectorBasis::Z));
        let b = sample_batch(&c, 64, 1);
        assert_eq!(b.hamming_weight(5), 2);
        assert_eq!(b.flagged_detectors(5), vec![0, 1]);
    }
}
