//! Detector error model extraction.

use ftqc_circuit::{Circuit, Op, Qubit};
use std::collections::HashMap;

/// One independent error mechanism: with probability `probability` the
/// listed detectors and observables flip.
#[derive(Debug, Clone, PartialEq)]
pub struct Mechanism {
    /// Occurrence probability.
    pub probability: f64,
    /// Flipped detectors, sorted ascending.
    pub detectors: Vec<u32>,
    /// Bitmask of flipped logical observables (observable `i` is bit
    /// `i`; at most 32 observables are supported).
    pub observables: u32,
}

/// Statistics from DEM extraction, mainly for diagnosing decompositions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DemStats {
    /// Error-channel Pauli components examined.
    pub components: usize,
    /// Components whose detector footprint exceeded 2 detectors after
    /// CSS splitting and had to be decomposed against elementary edges.
    pub decomposed_hyperedges: usize,
    /// Hyperedges that could not be decomposed and were dropped from the
    /// model (the sampler still produces them; the decoder just has no
    /// edge for them). Nonzero values indicate a circuit structure the
    /// decoder graph cannot represent.
    pub dropped_hyperedges: usize,
}

/// A detector error model: the set of independent error mechanisms of a
/// noisy circuit together with their detector/observable footprints.
///
/// Extracted by a backward *sensitivity sweep*: walking the circuit in
/// reverse while maintaining, for every qubit, the set of measurement
/// records that an X (resp. Z) error at the current position would flip.
/// Each noise-channel component is then mapped through the
/// record-to-detector tables. With `decompose` enabled (the default for
/// matching decoders), every component is first split into its X part
/// and Z part — the CSS decomposition that keeps mechanisms *graphlike*
/// (at most 2 flipped detectors), exactly as Stim's `decompose_errors`
/// does for surface-code circuits.
///
/// # Example
///
/// ```
/// use ftqc_circuit::{Circuit, DetectorBasis, MeasRef, Op};
/// use ftqc_sim::DetectorErrorModel;
///
/// let mut c = Circuit::new(1);
/// c.push(Op::ResetZ(vec![0]));
/// c.push(Op::Depolarize1 { qubits: vec![0], p: 0.01 });
/// c.push(Op::measure_z([0], 0.0));
/// c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
/// let (dem, stats) = DetectorErrorModel::from_circuit(&c, true);
/// assert_eq!(dem.mechanisms().len(), 1); // X and Y components merge
/// assert_eq!(stats.dropped_hyperedges, 0);
/// ```
#[derive(Debug, Clone)]
pub struct DetectorErrorModel {
    num_detectors: usize,
    num_observables: usize,
    mechanisms: Vec<Mechanism>,
}

impl DetectorErrorModel {
    /// Extracts the detector error model of `circuit`.
    ///
    /// With `decompose = true`, components are CSS-split into X/Z parts
    /// and residual hyperedges are greedily decomposed against
    /// elementary (≤ 2 detector) mechanisms.
    pub fn from_circuit(circuit: &Circuit, decompose: bool) -> (DetectorErrorModel, DemStats) {
        Extractor::new(circuit).extract(decompose)
    }

    /// Assembles a model directly from its parts — the seam
    /// `ftqc-analyzer` uses to reconstruct a model from a `.dem` text
    /// file. No validation happens here; run the analyzer's artifact
    /// checks over the result before decoding through it.
    pub fn from_parts(
        num_detectors: usize,
        num_observables: usize,
        mechanisms: Vec<Mechanism>,
    ) -> DetectorErrorModel {
        DetectorErrorModel {
            num_detectors,
            num_observables,
            mechanisms,
        }
    }

    /// Number of detectors in the underlying circuit.
    pub fn num_detectors(&self) -> usize {
        self.num_detectors
    }

    /// Number of observables in the underlying circuit.
    pub fn num_observables(&self) -> usize {
        self.num_observables
    }

    /// The independent error mechanisms.
    pub fn mechanisms(&self) -> &[Mechanism] {
        &self.mechanisms
    }
}

/// Sorted-vec symmetric difference (XOR of sets).
fn symdiff(a: &[u32], b: &[u32]) -> Vec<u32> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

struct Extractor<'a> {
    circuit: &'a Circuit,
    /// Records flipped by an X error on qubit q at the current (reverse)
    /// position.
    eff_x: Vec<Vec<u32>>,
    /// Records flipped by a Z error on qubit q.
    eff_z: Vec<Vec<u32>>,
    /// For each record: detectors containing it.
    rec_to_dets: Vec<Vec<u32>>,
    /// For each record: observable bitmask.
    rec_to_obs: Vec<u32>,
}

#[derive(Debug)]
struct RawComponent {
    probability: f64,
    detectors: Vec<u32>,
    observables: u32,
}

impl<'a> Extractor<'a> {
    fn new(circuit: &'a Circuit) -> Extractor<'a> {
        let n = circuit.num_qubits() as usize;
        let nrec = circuit.num_measurements() as usize;
        let mut rec_to_dets = vec![Vec::new(); nrec];
        let mut rec_to_obs = vec![0u32; nrec];
        let mut det = 0u32;
        for op in circuit.ops() {
            match op {
                Op::Detector { records, .. } => {
                    for r in records {
                        rec_to_dets[r.0 as usize].push(det);
                    }
                    det += 1;
                }
                Op::ObservableInclude {
                    observable,
                    records,
                } => {
                    assert!(
                        *observable < 32,
                        "at most 32 observables supported, got index {observable}"
                    );
                    for r in records {
                        rec_to_obs[r.0 as usize] ^= 1u32 << observable;
                    }
                }
                _ => {}
            }
        }
        Extractor {
            circuit,
            eff_x: vec![Vec::new(); n],
            eff_z: vec![Vec::new(); n],
            rec_to_dets,
            rec_to_obs,
        }
    }

    fn extract(mut self, decompose: bool) -> (DetectorErrorModel, DemStats) {
        let mut stats = DemStats::default();
        let mut raw: Vec<RawComponent> = Vec::new();
        // Walk records backward: assign indices by pre-scanning.
        let mut next_record = self.circuit.num_measurements();
        let ops: Vec<&Op> = self.circuit.ops().iter().collect();
        for op in ops.into_iter().rev() {
            match op {
                Op::H(qs) => {
                    for &q in qs {
                        let q = q as usize;
                        self.eff_x.swap(q, q); // no-op to appease clippy
                        let (x, z) = (
                            std::mem::take(&mut self.eff_x[q]),
                            std::mem::take(&mut self.eff_z[q]),
                        );
                        self.eff_x[q] = z;
                        self.eff_z[q] = x;
                    }
                }
                Op::S(qs) => {
                    // X -> Y = X*Z after the gate, so the effect of an X
                    // inserted before S is effX xor effZ.
                    for &q in qs {
                        let q = q as usize;
                        self.eff_x[q] = symdiff(&self.eff_x[q], &self.eff_z[q]);
                    }
                }
                Op::X(_) | Op::Y(_) | Op::Z(_) => {}
                Op::Cx(pairs) => {
                    for &(c, t) in pairs {
                        let (c, t) = (c as usize, t as usize);
                        // X_c -> X_c X_t; Z_t -> Z_c Z_t.
                        self.eff_x[c] = symdiff(&self.eff_x[c], &self.eff_x[t]);
                        self.eff_z[t] = symdiff(&self.eff_z[t], &self.eff_z[c]);
                    }
                }
                Op::ResetZ(qs) | Op::ResetX(qs) => {
                    for &q in qs {
                        self.eff_x[q as usize].clear();
                        self.eff_z[q as usize].clear();
                    }
                }
                Op::MeasureZ {
                    qubits,
                    flip_probability,
                } => {
                    for &q in qubits.iter().rev() {
                        next_record -= 1;
                        stats.components += 1;
                        self.measure_update(q, next_record, MeasKind::Z, false);
                        self.emit_flip(&mut raw, *flip_probability, next_record);
                    }
                }
                Op::MeasureX {
                    qubits,
                    flip_probability,
                } => {
                    for &q in qubits.iter().rev() {
                        next_record -= 1;
                        stats.components += 1;
                        self.measure_update(q, next_record, MeasKind::X, false);
                        self.emit_flip(&mut raw, *flip_probability, next_record);
                    }
                }
                Op::MeasureReset {
                    qubits,
                    flip_probability,
                } => {
                    for &q in qubits.iter().rev() {
                        next_record -= 1;
                        stats.components += 1;
                        self.measure_update(q, next_record, MeasKind::Z, true);
                        self.emit_flip(&mut raw, *flip_probability, next_record);
                    }
                }
                Op::PauliChannel { qubits, px, py, pz } => {
                    for &q in qubits {
                        let q = q as usize;
                        stats.components += 3;
                        if *px > 0.0 {
                            self.emit(&mut raw, *px, self.eff_x[q].clone());
                        }
                        if *py > 0.0 {
                            let recs = symdiff(&self.eff_x[q], &self.eff_z[q]);
                            self.emit(&mut raw, *py, recs);
                        }
                        if *pz > 0.0 {
                            self.emit(&mut raw, *pz, self.eff_z[q].clone());
                        }
                    }
                }
                Op::Depolarize1 { qubits, p } => {
                    let pc = p / 3.0;
                    for &q in qubits {
                        let q = q as usize;
                        stats.components += 3;
                        if pc > 0.0 {
                            self.emit(&mut raw, pc, self.eff_x[q].clone());
                            self.emit(&mut raw, pc, symdiff(&self.eff_x[q], &self.eff_z[q]));
                            self.emit(&mut raw, pc, self.eff_z[q].clone());
                        }
                    }
                }
                Op::Depolarize2 { pairs, p } => {
                    let pc = p / 15.0;
                    if pc <= 0.0 {
                        continue;
                    }
                    for &(a, b) in pairs {
                        stats.components += 15;
                        for code in 1u8..16 {
                            let recs_a = self.pauli_records(a, code >> 2);
                            let recs_b = self.pauli_records(b, code & 3);
                            self.emit(&mut raw, pc, symdiff(&recs_a, &recs_b));
                        }
                    }
                }
                Op::Detector { .. } | Op::ObservableInclude { .. } => {}
            }
        }
        debug_assert_eq!(next_record, 0, "record bookkeeping drift");

        // Map raw record-sets to detector sets via symmetric difference,
        // then merge / decompose.
        let merged = self.merge(raw, decompose, &mut stats);
        (
            DetectorErrorModel {
                num_detectors: self.circuit.num_detectors() as usize,
                num_observables: self.circuit.num_observables() as usize,
                mechanisms: merged,
            },
            stats,
        )
    }

    /// Records flipped by Pauli `code` (0=I,1=X,2=Y,3=Z) on qubit `q`.
    fn pauli_records(&self, q: Qubit, code: u8) -> Vec<u32> {
        let q = q as usize;
        match code {
            0 => Vec::new(),
            1 => self.eff_x[q].clone(),
            2 => symdiff(&self.eff_x[q], &self.eff_z[q]),
            _ => self.eff_z[q].clone(),
        }
    }

    /// A classical readout flip of `record` with probability `p` is an
    /// error mechanism of its own.
    fn emit_flip(&self, raw: &mut Vec<RawComponent>, p: f64, record: u32) {
        if p > 0.0 {
            self.emit(raw, p, vec![record]);
        }
    }

    fn measure_update(&mut self, q: Qubit, record: u32, kind: MeasKind, reset: bool) {
        let q = q as usize;
        match kind {
            MeasKind::Z => {
                // An X error before MZ flips the record; it survives the
                // measurement unless there is a reset. A Z error before
                // MZ neither flips nor survives.
                if reset {
                    self.eff_x[q] = vec![record];
                } else {
                    self.eff_x[q] = symdiff(&self.eff_x[q], &[record]);
                }
                self.eff_z[q].clear();
            }
            MeasKind::X => {
                if reset {
                    self.eff_z[q] = vec![record];
                } else {
                    self.eff_z[q] = symdiff(&self.eff_z[q], &[record]);
                }
                self.eff_x[q].clear();
            }
        }
    }

    fn emit(&self, raw: &mut Vec<RawComponent>, p: f64, records: Vec<u32>) {
        if records.is_empty() {
            return;
        }
        let mut dets: Vec<u32> = Vec::new();
        let mut obs = 0u32;
        for r in records {
            dets = symdiff(&dets, &self.rec_to_dets[r as usize]);
            obs ^= self.rec_to_obs[r as usize];
        }
        if dets.is_empty() && obs == 0 {
            return;
        }
        raw.push(RawComponent {
            probability: p,
            detectors: dets,
            observables: obs,
        });
    }

    fn merge(
        &self,
        raw: Vec<RawComponent>,
        decompose: bool,
        stats: &mut DemStats,
    ) -> Vec<Mechanism> {
        let mut map: HashMap<(Vec<u32>, u32), f64> = HashMap::new();
        let mut add = |dets: Vec<u32>, obs: u32, p: f64| {
            let e = map.entry((dets, obs)).or_insert(0.0);
            // Two ways to produce the same flip pattern combine as
            // "exactly one occurs".
            *e = *e * (1.0 - p) + p * (1.0 - *e);
        };
        if !decompose {
            for c in raw {
                add(c.detectors, c.observables, c.probability);
            }
        } else {
            // First pass: everything graphlike goes in directly and
            // registers as an elementary edge.
            let mut elementary: Vec<(Vec<u32>, u32)> = Vec::new();
            let mut pending: Vec<RawComponent> = Vec::new();
            for c in raw {
                if c.detectors.len() <= 2 {
                    elementary.push((c.detectors.clone(), c.observables));
                    add(c.detectors, c.observables, c.probability);
                } else {
                    pending.push(c);
                }
            }
            use std::collections::HashSet;
            let edge_set: HashSet<Vec<u32>> = elementary.iter().map(|(d, _)| d.clone()).collect();
            let obs_for: HashMap<Vec<u32>, u32> =
                elementary.iter().map(|(d, o)| (d.clone(), *o)).collect();
            for c in pending {
                stats.decomposed_hyperedges += 1;
                match decompose_against(&c.detectors, &edge_set) {
                    Some(parts) => {
                        // Distribute observables: assign the component's
                        // observable mask XOR of the parts' own known
                        // masks to the first part so the total is right.
                        let mut assigned = 0u32;
                        let known: Vec<u32> = parts
                            .iter()
                            .map(|p| obs_for.get(p).copied().unwrap_or(0))
                            .collect();
                        for (i, part) in parts.iter().enumerate() {
                            let mut o = known[i];
                            if i == 0 {
                                let total_known: u32 = known.iter().fold(0, |a, b| a ^ b);
                                o ^= c.observables ^ total_known;
                            }
                            assigned ^= o;
                            add(part.clone(), o, c.probability);
                        }
                        debug_assert_eq!(assigned, c.observables);
                    }
                    None => {
                        stats.dropped_hyperedges += 1;
                    }
                }
            }
        }
        let mut out: Vec<Mechanism> = map
            .into_iter()
            .filter(|&(_, p)| p > 0.0)
            .map(|((detectors, observables), probability)| Mechanism {
                probability,
                detectors,
                observables,
            })
            .collect();
        out.sort_by(|a, b| {
            a.detectors
                .cmp(&b.detectors)
                .then(a.observables.cmp(&b.observables))
        });
        out
    }
}

/// Tries to partition `dets` (sorted, > 2 entries) into groups of 1–2
/// detectors such that every group is an existing elementary edge.
fn decompose_against(
    dets: &[u32],
    edges: &std::collections::HashSet<Vec<u32>>,
) -> Option<Vec<Vec<u32>>> {
    if dets.is_empty() {
        return Some(Vec::new());
    }
    let first = dets[0];
    // Try pairing `first` with each other detector.
    for (i, &other) in dets.iter().enumerate().skip(1) {
        let pair = vec![first, other];
        if edges.contains(&pair) {
            let mut rest: Vec<u32> = Vec::with_capacity(dets.len() - 2);
            for (j, &d) in dets.iter().enumerate() {
                if j != 0 && j != i {
                    rest.push(d);
                }
            }
            if let Some(mut sub) = decompose_against(&rest, edges) {
                sub.insert(0, pair);
                return Some(sub);
            }
        }
    }
    // Try `first` alone as a boundary edge.
    let single = vec![first];
    if edges.contains(&single) {
        if let Some(mut sub) = decompose_against(&dets[1..], edges) {
            sub.insert(0, single);
            return Some(sub);
        }
    }
    None
}

enum MeasKind {
    X,
    Z,
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqc_circuit::{DetectorBasis, MeasRef};

    #[test]
    fn symdiff_basics() {
        assert_eq!(symdiff(&[1, 3, 5], &[3, 4]), vec![1, 4, 5]);
        assert_eq!(symdiff(&[], &[2]), vec![2]);
        assert_eq!(symdiff(&[2], &[2]), Vec::<u32>::new());
    }

    #[test]
    fn single_qubit_channel_footprint() {
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(vec![0]));
        c.push(Op::PauliChannel {
            qubits: vec![0],
            px: 0.01,
            py: 0.0,
            pz: 0.02,
        });
        c.push(Op::measure_z([0], 0.0));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        let (dem, _) = DetectorErrorModel::from_circuit(&c, true);
        // Only the X component flips the detector; the Z component has no
        // footprint and is dropped.
        assert_eq!(dem.mechanisms().len(), 1);
        assert_eq!(dem.mechanisms()[0].detectors, vec![0]);
        assert!((dem.mechanisms()[0].probability - 0.01).abs() < 1e-12);
    }

    #[test]
    fn x_and_y_components_merge() {
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(vec![0]));
        c.push(Op::Depolarize1 {
            qubits: vec![0],
            p: 0.3,
        });
        c.push(Op::measure_z([0], 0.0));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        let (dem, _) = DetectorErrorModel::from_circuit(&c, true);
        assert_eq!(dem.mechanisms().len(), 1);
        // p(X) + p(Y) - 2 p(X) p(Y) with each 0.1.
        let expect = 0.1 + 0.1 - 2.0 * 0.01;
        assert!((dem.mechanisms()[0].probability - expect).abs() < 1e-12);
    }

    #[test]
    fn cx_propagation_reaches_both_records() {
        // X error on control before CX flips both subsequent Z
        // measurements.
        let mut c = Circuit::new(2);
        c.push(Op::ResetZ(vec![0, 1]));
        c.push(Op::PauliChannel {
            qubits: vec![0],
            px: 0.05,
            py: 0.0,
            pz: 0.0,
        });
        c.push(Op::cx([(0, 1)]));
        c.push(Op::measure_z([0, 1], 0.0));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        c.push(Op::detector([MeasRef(1)], DetectorBasis::Z));
        let (dem, _) = DetectorErrorModel::from_circuit(&c, true);
        assert_eq!(dem.mechanisms().len(), 1);
        assert_eq!(dem.mechanisms()[0].detectors, vec![0, 1]);
    }

    #[test]
    fn observables_tracked() {
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(vec![0]));
        c.push(Op::PauliChannel {
            qubits: vec![0],
            px: 0.01,
            py: 0.0,
            pz: 0.0,
        });
        c.push(Op::measure_z([0], 0.0));
        c.push(Op::ObservableInclude {
            observable: 2,
            records: vec![MeasRef(0)],
        });
        let (dem, _) = DetectorErrorModel::from_circuit(&c, false);
        assert_eq!(dem.mechanisms().len(), 1);
        assert_eq!(dem.mechanisms()[0].observables, 1 << 2);
        assert_eq!(dem.num_observables(), 3);
    }

    #[test]
    fn measurement_flip_is_its_own_mechanism() {
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(vec![0]));
        c.push(Op::measure_reset([0], 0.0));
        c.push(Op::measure_z([0], 0.0));
        c.push(Op::detector([MeasRef(0), MeasRef(1)], DetectorBasis::Z));
        c.push(Op::PauliChannel {
            qubits: vec![0],
            px: 0.0,
            py: 0.0,
            pz: 0.0,
        });
        // No noise at all: empty DEM.
        let (dem, _) = DetectorErrorModel::from_circuit(&c, true);
        assert!(dem.mechanisms().is_empty());
    }

    #[test]
    fn x_before_measure_reset_hits_only_that_record() {
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(vec![0]));
        c.push(Op::PauliChannel {
            qubits: vec![0],
            px: 0.02,
            py: 0.0,
            pz: 0.0,
        });
        c.push(Op::measure_reset([0], 0.0));
        c.push(Op::measure_z([0], 0.0));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        c.push(Op::detector([MeasRef(1)], DetectorBasis::Z));
        let (dem, _) = DetectorErrorModel::from_circuit(&c, true);
        assert_eq!(dem.mechanisms().len(), 1);
        assert_eq!(dem.mechanisms()[0].detectors, vec![0]);
    }

    #[test]
    fn h_swaps_sensitivity() {
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(vec![0]));
        c.push(Op::PauliChannel {
            qubits: vec![0],
            px: 0.0,
            py: 0.0,
            pz: 0.04,
        });
        c.push(Op::h([0]));
        c.push(Op::measure_z([0], 0.0));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        let (dem, _) = DetectorErrorModel::from_circuit(&c, true);
        assert_eq!(dem.mechanisms().len(), 1);
        assert!((dem.mechanisms()[0].probability - 0.04).abs() < 1e-12);
    }

    #[test]
    fn decompose_against_splits_into_pairs() {
        use std::collections::HashSet;
        let mut edges = HashSet::new();
        edges.insert(vec![0, 1]);
        edges.insert(vec![2, 3]);
        let parts = decompose_against(&[0, 1, 2, 3], &edges).unwrap();
        assert_eq!(parts, vec![vec![0, 1], vec![2, 3]]);
        assert!(decompose_against(&[0, 2, 3], &edges).is_none());
        edges.insert(vec![0]);
        let parts = decompose_against(&[0, 2, 3], &edges).unwrap();
        assert_eq!(parts, vec![vec![0], vec![2, 3]]);
    }

    #[test]
    fn dem_rates_match_sampler() {
        // Cross-validate: detector marginal rate predicted by the DEM
        // matches the frame sampler on a two-detector circuit.
        let mut c = Circuit::new(2);
        c.push(Op::ResetZ(vec![0, 1]));
        c.push(Op::Depolarize2 {
            pairs: vec![(0, 1)],
            p: 0.15,
        });
        c.push(Op::measure_z([0, 1], 0.0));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        c.push(Op::detector([MeasRef(1)], DetectorBasis::Z));
        let (dem, _) = DetectorErrorModel::from_circuit(&c, false);
        // Predicted marginal for detector 0: sum over mechanisms
        // containing it (small p approximation fine at exact level here
        // because mechanisms are disjoint events from one channel).
        let p0: f64 = dem
            .mechanisms()
            .iter()
            .filter(|m| m.detectors.contains(&0))
            .map(|m| m.probability)
            .sum();
        let batch = crate::sample_batch(&c, 400_000, 17);
        let measured = batch.count_detector_flips(0) as f64 / 400_000.0;
        assert!(
            (p0 - measured).abs() < 0.005,
            "dem {p0} vs sampled {measured}"
        );
    }
}
