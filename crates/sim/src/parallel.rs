//! Deterministic multithreaded shot running.

use crate::frame::{sample_batch, SampleBatch};
use ftqc_circuit::Circuit;

/// SplitMix64 finalizer, used to derive independent per-batch seeds.
fn mix_seed(seed: u64, batch: u64) -> u64 {
    let mut z = seed ^ batch.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Samples `shots` shots of `circuit` in batches of `batch_shots` across
/// `threads` OS threads, applying `f` to every batch and returning the
/// per-batch results in batch order.
///
/// Seeding is deterministic: batch `i` always uses the same derived
/// seed, so results are reproducible for a fixed `(seed, batch_shots)`
/// regardless of thread count.
///
/// # Example
///
/// ```
/// use ftqc_circuit::{Circuit, DetectorBasis, MeasRef, Op};
/// use ftqc_sim::parallel_batches;
///
/// let mut c = Circuit::new(1);
/// c.push(Op::ResetZ(vec![0]));
/// c.push(Op::Depolarize1 { qubits: vec![0], p: 0.05 });
/// c.push(Op::measure_z([0], 0.0));
/// c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
/// let counts = parallel_batches(&c, 10_000, 1024, 7, 2, |b| {
///     b.count_detector_flips(0)
/// });
/// let total: u64 = counts.iter().sum();
/// assert!(total > 0);
/// ```
///
/// # Panics
///
/// Panics if `shots == 0`, `batch_shots == 0` or `threads == 0`.
pub fn parallel_batches<R, F>(
    circuit: &Circuit,
    shots: u64,
    batch_shots: usize,
    seed: u64,
    threads: usize,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&SampleBatch) -> R + Sync,
{
    assert!(shots > 0 && batch_shots > 0 && threads > 0);
    let num_batches = shots.div_ceil(batch_shots as u64);
    let mut results: Vec<Option<R>> = Vec::with_capacity(num_batches as usize);
    results.resize_with(num_batches as usize, || None);
    let next = std::sync::atomic::AtomicU64::new(0);
    // Lock-free result collection: every worker writes straight into
    // its claimed batch's slot. The atomic counter hands each batch
    // index to exactly one worker, so all writes are disjoint.
    let slots = SlotWriter(results.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(num_batches as usize) {
            scope.spawn(|| loop {
                let b = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if b >= num_batches {
                    break;
                }
                let this_shots = if b == num_batches - 1 {
                    (shots - b * batch_shots as u64) as usize
                } else {
                    batch_shots
                };
                let batch = sample_batch(circuit, this_shots, mix_seed(seed, b));
                let r = f(&batch);
                // SAFETY: `b < num_batches` (checked above) indexes
                // within the pre-sized vec, each index is claimed by
                // exactly one worker via `fetch_add`, and the scope
                // joins every worker before `results` is read again.
                unsafe { slots.write(b as usize, r) };
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all batches processed"))
        .collect()
}

/// Shared base pointer into the per-batch result slots.
///
/// Safety contract (upheld by [`parallel_batches`]): concurrent
/// [`SlotWriter::write`] calls must target distinct indices within the
/// allocation, and the owning vec must outlive all writers.
struct SlotWriter<R>(*mut Option<R>);

impl<R> SlotWriter<R> {
    /// Writes `value` into slot `index`.
    ///
    /// # Safety
    ///
    /// `index` must be in bounds and not concurrently accessed.
    unsafe fn write(&self, index: usize, value: R) {
        unsafe { *self.0.add(index) = Some(value) };
    }
}

// SAFETY: a SlotWriter is only a base address; the disjointness of the
// writes performed through it is guaranteed by the batch-index claim
// protocol above.
unsafe impl<R: Send> Send for SlotWriter<R> {}
unsafe impl<R: Send> Sync for SlotWriter<R> {}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqc_circuit::{DetectorBasis, MeasRef, Op};

    fn noisy_circuit() -> Circuit {
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(vec![0]));
        c.push(Op::Depolarize1 {
            qubits: vec![0],
            p: 0.05,
        });
        c.push(Op::measure_z([0], 0.0));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        c
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let c = noisy_circuit();
        let one: u64 = parallel_batches(&c, 5000, 512, 42, 1, |b| b.count_detector_flips(0))
            .iter()
            .sum();
        let four: u64 = parallel_batches(&c, 5000, 512, 42, 4, |b| b.count_detector_flips(0))
            .iter()
            .sum();
        assert_eq!(one, four);
    }

    #[test]
    fn total_shots_respected() {
        let c = noisy_circuit();
        let sizes = parallel_batches(&c, 1000, 300, 1, 2, |b| b.shots as u64);
        assert_eq!(sizes.iter().sum::<u64>(), 1000);
        assert_eq!(sizes.len(), 4);
        assert_eq!(sizes[3], 100);
    }

    #[test]
    fn oversubscribed_threads_fill_every_slot() {
        // More workers than batches and tiny batches: stresses the
        // disjoint per-slot writes of the lock-free collection path.
        let c = noisy_circuit();
        let a = parallel_batches(&c, 4_097, 64, 9, 16, |b| b.count_detector_flips(0));
        let b = parallel_batches(&c, 4_097, 64, 9, 1, |b| b.count_detector_flips(0));
        assert_eq!(a.len(), 65);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let c = noisy_circuit();
        let a: u64 = parallel_batches(&c, 20_000, 1024, 1, 2, |b| b.count_detector_flips(0))
            .iter()
            .sum();
        let b: u64 = parallel_batches(&c, 20_000, 1024, 2, 2, |b| b.count_detector_flips(0))
            .iter()
            .sum();
        assert_ne!(a, b);
    }
}
