//! Deterministic multithreaded shot running.

use crate::frame::{sample_batch_with, FrameSimulator, SampleBatch};
use ftqc_circuit::Circuit;

/// SplitMix64 finalizer, used to derive independent per-batch seeds.
fn mix_seed(seed: u64, batch: u64) -> u64 {
    let mut z = seed ^ batch.wrapping_mul(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

/// Samples `shots` shots of `circuit` in batches of `batch_shots` across
/// `threads` OS threads, applying `f` to every batch and returning the
/// per-batch results in batch order.
///
/// Seeding is deterministic: batch `i` always uses the same derived
/// seed, so results are reproducible for a fixed `(seed, batch_shots)`
/// regardless of thread count.
///
/// # Example
///
/// ```
/// use ftqc_circuit::{Circuit, DetectorBasis, MeasRef, Op};
/// use ftqc_sim::parallel_batches;
///
/// let mut c = Circuit::new(1);
/// c.push(Op::ResetZ(vec![0]));
/// c.push(Op::Depolarize1 { qubits: vec![0], p: 0.05 });
/// c.push(Op::measure_z([0], 0.0));
/// c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
/// let counts = parallel_batches(&c, 10_000, 1024, 7, 2, |b| {
///     b.count_detector_flips(0)
/// });
/// let total: u64 = counts.iter().sum();
/// assert!(total > 0);
/// ```
///
/// # Panics
///
/// Panics if `shots == 0`, `batch_shots == 0` or `threads == 0`.
pub fn parallel_batches<R, F>(
    circuit: &Circuit,
    shots: u64,
    batch_shots: usize,
    seed: u64,
    threads: usize,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&SampleBatch) -> R + Sync,
{
    parallel_batches_indexed(circuit, &batch_plan(shots, batch_shots), seed, threads, f)
}

/// One sampling work unit: `(global batch index, shots in the batch)`.
///
/// The **global index** — not the position within a plan slice — is
/// what derives the batch's seed, so any partition of the same plan
/// into sub-slices samples bit-identical shots.
pub type BatchSpec = (u64, usize);

/// The batch plan a `shots`-shot run executes: consecutive
/// `batch_shots`-sized batches starting at global index 0, with a
/// final partial batch holding the remainder.
///
/// # Panics
///
/// Panics if `shots == 0` or `batch_shots == 0`.
pub fn batch_plan(shots: u64, batch_shots: usize) -> Vec<BatchSpec> {
    assert!(shots > 0 && batch_shots > 0);
    let num_batches = shots.div_ceil(batch_shots as u64);
    (0..num_batches)
        .map(|b| {
            let size = if b == num_batches - 1 {
                (shots - b * batch_shots as u64) as usize
            } else {
                batch_shots
            };
            (b, size)
        })
        .collect()
}

/// Samples an explicit batch plan across `threads` OS threads,
/// applying `f` to every batch and returning the per-batch results in
/// plan order.
///
/// Each batch's seed is derived from its **global index** alone, so a
/// plan produces the same results whether it is executed in one call
/// or split into arbitrary consecutive chunks — the streaming seam the
/// adaptive evaluation engine is built on.
///
/// # Panics
///
/// Panics if `threads == 0` or any batch in the plan is empty.
pub fn parallel_batches_indexed<R, F>(
    circuit: &Circuit,
    batches: &[BatchSpec],
    seed: u64,
    threads: usize,
    f: F,
) -> Vec<R>
where
    R: Send,
    F: Fn(&SampleBatch) -> R + Sync,
{
    parallel_batches_with(circuit, batches, seed, threads, || (), |batch, ()| f(batch))
}

/// [`parallel_batches_indexed`] with per-thread worker state: every
/// worker calls `init` once and threads the resulting state mutably
/// through all the batches it claims.
///
/// This is the allocation seam of the decode hot loop: the sampler's
/// frame/record buffers and the output [`SampleBatch`] are owned by the
/// worker and reused across batches, and `init` lets callers attach
/// their own reusable scratch (decoder workspaces, syndrome buffers) —
/// so a steady-state batch costs zero heap allocations beyond what `f`
/// itself returns.
///
/// Results are bit-identical to [`parallel_batches_indexed`]: batch
/// seeds are derived from global indices alone, and state never affects
/// sampling.
///
/// # Panics
///
/// Panics if `threads == 0` or any batch in the plan is empty.
pub fn parallel_batches_with<R, S, I, F>(
    circuit: &Circuit,
    batches: &[BatchSpec],
    seed: u64,
    threads: usize,
    init: I,
    f: F,
) -> Vec<R>
where
    R: Send,
    I: Fn() -> S + Sync,
    F: Fn(&SampleBatch, &mut S) -> R + Sync,
{
    assert!(threads > 0);
    assert!(batches.iter().all(|&(_, size)| size > 0));
    let mut results: Vec<Option<R>> = Vec::with_capacity(batches.len());
    results.resize_with(batches.len(), || None);
    let next = std::sync::atomic::AtomicU64::new(0);
    // Lock-free result collection: every worker writes straight into
    // its claimed batch's slot. The atomic counter hands each plan
    // position to exactly one worker, so all writes are disjoint.
    let slots = SlotWriter(results.as_mut_ptr());
    std::thread::scope(|scope| {
        for _ in 0..threads.min(batches.len()) {
            scope.spawn(|| {
                let mut state = init();
                let mut sim = FrameSimulator::empty();
                let mut batch = SampleBatch::empty();
                loop {
                    let i = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed) as usize;
                    if i >= batches.len() {
                        break;
                    }
                    let (index, size) = batches[i];
                    sample_batch_with(circuit, size, mix_seed(seed, index), &mut sim, &mut batch);
                    let r = f(&batch, &mut state);
                    // SAFETY: `i < batches.len()` (checked above) indexes
                    // within the pre-sized vec, each position is claimed by
                    // exactly one worker via `fetch_add`, and the scope
                    // joins every worker before `results` is read again.
                    unsafe { slots.write(i, r) };
                }
            });
        }
    });
    results
        .into_iter()
        .map(|r| r.expect("all batches processed"))
        .collect()
}

/// Shared base pointer into the per-batch result slots.
///
/// Safety contract (upheld by [`parallel_batches`]): concurrent
/// [`SlotWriter::write`] calls must target distinct indices within the
/// allocation, and the owning vec must outlive all writers.
struct SlotWriter<R>(*mut Option<R>);

impl<R> SlotWriter<R> {
    /// Writes `value` into slot `index`.
    ///
    /// # Safety
    ///
    /// `index` must be in bounds and not concurrently accessed.
    unsafe fn write(&self, index: usize, value: R) {
        // SAFETY: the caller guarantees `index` is in bounds of the
        // allocation behind `self.0` and that no other thread touches
        // that slot while this write runs.
        unsafe { *self.0.add(index) = Some(value) };
    }
}

// SAFETY: a SlotWriter is only a base address; the disjointness of the
// writes performed through it is guaranteed by the batch-index claim
// protocol above.
unsafe impl<R: Send> Send for SlotWriter<R> {}
// SAFETY: same argument as Send — shared references expose only
// `write`, whose caller contract rules out overlapping slot access.
unsafe impl<R: Send> Sync for SlotWriter<R> {}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqc_circuit::{DetectorBasis, MeasRef, Op};

    fn noisy_circuit() -> Circuit {
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(vec![0]));
        c.push(Op::Depolarize1 {
            qubits: vec![0],
            p: 0.05,
        });
        c.push(Op::measure_z([0], 0.0));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        c
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let c = noisy_circuit();
        let one: u64 = parallel_batches(&c, 5000, 512, 42, 1, |b| b.count_detector_flips(0))
            .iter()
            .sum();
        let four: u64 = parallel_batches(&c, 5000, 512, 42, 4, |b| b.count_detector_flips(0))
            .iter()
            .sum();
        assert_eq!(one, four);
    }

    #[test]
    fn total_shots_respected() {
        let c = noisy_circuit();
        let sizes = parallel_batches(&c, 1000, 300, 1, 2, |b| b.shots as u64);
        assert_eq!(sizes.iter().sum::<u64>(), 1000);
        assert_eq!(sizes.len(), 4);
        assert_eq!(sizes[3], 100);
    }

    #[test]
    fn oversubscribed_threads_fill_every_slot() {
        // More workers than batches and tiny batches: stresses the
        // disjoint per-slot writes of the lock-free collection path.
        let c = noisy_circuit();
        let a = parallel_batches(&c, 4_097, 64, 9, 16, |b| b.count_detector_flips(0));
        let b = parallel_batches(&c, 4_097, 64, 9, 1, |b| b.count_detector_flips(0));
        assert_eq!(a.len(), 65);
        assert_eq!(a, b);
    }

    #[test]
    fn split_plans_match_one_call() {
        // The streaming property the adaptive engine relies on: a plan
        // executed in chunks equals the same plan executed at once.
        let c = noisy_circuit();
        let plan = batch_plan(5_000, 512);
        let full = parallel_batches_indexed(&c, &plan, 42, 4, |b| b.count_detector_flips(0));
        let mut chunked = Vec::new();
        for chunk in plan.chunks(3) {
            chunked.extend(parallel_batches_indexed(&c, chunk, 42, 2, |b| {
                b.count_detector_flips(0)
            }));
        }
        assert_eq!(full, chunked);
    }

    #[test]
    fn per_thread_state_reuses_and_matches_stateless_path() {
        let c = noisy_circuit();
        let plan = batch_plan(5_000, 512);
        let stateless = parallel_batches_indexed(&c, &plan, 42, 4, |b| b.count_detector_flips(0));
        // State: a reusable syndrome buffer, as the decode loop keeps.
        let stateful = parallel_batches_with(&c, &plan, 42, 4, Vec::<u32>::new, |b, buf| {
            let mut flips = 0u64;
            for s in 0..b.shots {
                b.flagged_detectors_into(s, buf);
                flips += u64::from(buf.contains(&0));
            }
            flips
        });
        assert_eq!(stateless, stateful);
    }

    #[test]
    fn batch_plan_covers_shots_exactly() {
        let plan = batch_plan(1_000, 300);
        assert_eq!(plan, vec![(0, 300), (1, 300), (2, 300), (3, 100)]);
    }

    #[test]
    fn different_seeds_differ() {
        let c = noisy_circuit();
        let a: u64 = parallel_batches(&c, 20_000, 1024, 1, 2, |b| b.count_detector_flips(0))
            .iter()
            .sum();
        let b: u64 = parallel_batches(&c, 20_000, 1024, 2, 2, |b| b.count_detector_flips(0))
            .iter()
            .sum();
        assert_ne!(a, b);
    }
}
