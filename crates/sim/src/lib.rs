//! Bulk stabilizer-circuit sampling and detector error models.
//!
//! This crate is the workspace's Stim equivalent:
//!
//! * [`FrameSimulator`] / [`SampleBatch`] — a batched Pauli-frame
//!   simulator that propagates error frames for 64 shots per machine
//!   word and produces detector / observable flip samples.
//! * [`DetectorErrorModel`] — extraction of every error mechanism's
//!   detector footprint via a backward sensitivity sweep, with CSS
//!   decomposition into graphlike (≤ 2 detector) mechanisms for matching
//!   decoders.
//! * [`verify_deterministic`] — a tableau-based check that every
//!   detector and observable of a circuit is deterministic under zero
//!   noise (the validity condition Stim enforces).
//! * [`parallel_batches`] / [`parallel_batches_indexed`] /
//!   [`parallel_batches_with`] — a deterministic multithreaded shot
//!   runner whose per-batch seeds are derived from global batch
//!   indices, so a run can be streamed in chunks without changing its
//!   results; the `_with` variant gives every worker reusable
//!   per-thread state (sampler buffers are always reused), making
//!   steady-state batches allocation-free.
//! * [`RoundSchedule`] / [`RoundStream`] — round-streaming syndrome
//!   extraction: detectors grouped into measurement rounds by their
//!   `coords[2]` tag and replayed one round at a time through the
//!   scanner, feeding `ftqc-decoder`'s streaming sliding-window layer.
//! * [`BinomialEstimate`] — logical-error-rate statistics.
//! * [`RunningEstimate`] / [`StopRule`] — incremental estimate merging
//!   and the stopping criteria behind run-until-confident evaluation.
//!
//! # Example
//!
//! ```
//! use ftqc_circuit::{Circuit, DetectorBasis, MeasRef, Op};
//! use ftqc_sim::{sample_batch, verify_deterministic};
//!
//! // A noisy data qubit copied onto an ancilla and measured.
//! let mut c = Circuit::new(2);
//! c.push(Op::ResetZ(vec![0, 1]));
//! c.push(Op::Depolarize1 { qubits: vec![0], p: 0.3 });
//! c.push(Op::cx([(0, 1)]));
//! c.push(Op::measure_z([0, 1], 0.0));
//! c.push(Op::detector([MeasRef(1)], DetectorBasis::Z));
//! verify_deterministic(&c, 4).unwrap();
//! let batch = sample_batch(&c, 256, 42);
//! // The detector fires for X and Y errors (~2/3 of depolarizing events).
//! assert!(batch.count_detector_flips(0) > 0);
//! ```

mod dem;
mod frame;
mod parallel;
mod reference;
mod stats;
mod stream;

pub use dem::{DemStats, DetectorErrorModel, Mechanism};
pub use frame::{sample_batch, sample_batch_with, FrameSimulator, SampleBatch, SyndromeScanner};
pub use parallel::{
    batch_plan, parallel_batches, parallel_batches_indexed, parallel_batches_with, BatchSpec,
};
pub use reference::{run_reference, verify_deterministic, ReferenceRun};
pub use stats::{BinomialEstimate, RunningEstimate, StopReason, StopRule};
pub use stream::{RoundSchedule, RoundStream};
