//! Tableau-based reference execution and determinism checking.

use ftqc_circuit::{Circuit, Op};
use ftqc_pauli::Tableau;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// The result of one noiseless reference execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReferenceRun {
    /// Detector parities, in declaration order.
    pub detectors: Vec<bool>,
    /// Observable parities, by observable index.
    pub observables: Vec<bool>,
}

/// Runs `circuit` noiselessly on a stabilizer tableau, resolving random
/// measurement branches with the seeded RNG, and returns the detector
/// and observable parities.
///
/// Noise channels are skipped (they are noise, and this is the noiseless
/// reference); measurement flip probabilities are ignored.
pub fn run_reference(circuit: &Circuit, seed: u64) -> ReferenceRun {
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = circuit.num_qubits().max(1) as usize;
    let mut sim = Tableau::new(n);
    let mut records: Vec<bool> = Vec::with_capacity(circuit.num_measurements() as usize);
    let mut detectors = Vec::with_capacity(circuit.num_detectors() as usize);
    let mut observables = vec![false; circuit.num_observables() as usize];
    for op in circuit.ops() {
        match op {
            Op::H(qs) => qs.iter().for_each(|&q| sim.h(q as usize)),
            Op::S(qs) => qs.iter().for_each(|&q| sim.s(q as usize)),
            Op::X(qs) => qs
                .iter()
                .for_each(|&q| sim.pauli(q as usize, ftqc_pauli::Pauli::X)),
            Op::Y(qs) => qs
                .iter()
                .for_each(|&q| sim.pauli(q as usize, ftqc_pauli::Pauli::Y)),
            Op::Z(qs) => qs
                .iter()
                .for_each(|&q| sim.pauli(q as usize, ftqc_pauli::Pauli::Z)),
            Op::Cx(pairs) => pairs
                .iter()
                .for_each(|&(c, t)| sim.cx(c as usize, t as usize)),
            Op::ResetZ(qs) => qs
                .iter()
                .for_each(|&q| sim.reset_z(q as usize, || rng.gen())),
            Op::ResetX(qs) => qs
                .iter()
                .for_each(|&q| sim.reset_x(q as usize, || rng.gen())),
            Op::MeasureZ { qubits, .. } => {
                for &q in qubits {
                    let (m, _) = sim.measure_z(q as usize, || rng.gen());
                    records.push(m);
                }
            }
            Op::MeasureX { qubits, .. } => {
                for &q in qubits {
                    let (m, _) = sim.measure_x(q as usize, || rng.gen());
                    records.push(m);
                }
            }
            Op::MeasureReset { qubits, .. } => {
                for &q in qubits {
                    let (m, _) = sim.measure_z(q as usize, || rng.gen());
                    if m {
                        sim.pauli(q as usize, ftqc_pauli::Pauli::X);
                    }
                    records.push(m);
                }
            }
            Op::PauliChannel { .. } | Op::Depolarize1 { .. } | Op::Depolarize2 { .. } => {}
            Op::Detector { records: refs, .. } => {
                let parity = refs
                    .iter()
                    .fold(false, |acc, r| acc ^ records[r.0 as usize]);
                detectors.push(parity);
            }
            Op::ObservableInclude {
                observable,
                records: refs,
            } => {
                for r in refs {
                    observables[*observable as usize] ^= records[r.0 as usize];
                }
            }
        }
    }
    ReferenceRun {
        detectors,
        observables,
    }
}

/// Verifies that every detector and observable of `circuit` is
/// deterministic under zero noise by executing the circuit `attempts`
/// times with different random measurement branches and comparing
/// parities.
///
/// This is a randomized check: a genuinely random parity agrees across
/// all runs with probability `2^-(attempts-1)`, so 8 attempts catch a
/// faulty detector with probability better than 99%.
///
/// # Errors
///
/// Returns a description of the first disagreeing detector or
/// observable.
pub fn verify_deterministic(circuit: &Circuit, attempts: u32) -> Result<(), String> {
    assert!(attempts >= 2, "need at least two attempts to compare");
    let first = run_reference(circuit, 0xD15EA5E);
    for a in 1..attempts {
        let run = run_reference(
            circuit,
            0xD15EA5Eu64.wrapping_add((a as u64).wrapping_mul(0x9E3779B97F4A7C15)),
        );
        if let Some(d) = first
            .detectors
            .iter()
            .zip(&run.detectors)
            .position(|(x, y)| x != y)
        {
            return Err(format!(
                "detector {d} is not deterministic (runs 0 and {a} disagree)"
            ));
        }
        if let Some(o) = first
            .observables
            .iter()
            .zip(&run.observables)
            .position(|(x, y)| x != y)
        {
            return Err(format!(
                "observable {o} is not deterministic (runs 0 and {a} disagree)"
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqc_circuit::{DetectorBasis, MeasRef};

    #[test]
    fn deterministic_circuit_passes() {
        let mut c = Circuit::new(2);
        c.push(Op::ResetZ(vec![0, 1]));
        c.push(Op::h([0]));
        c.push(Op::cx([(0, 1)]));
        c.push(Op::measure_z([0, 1], 0.0));
        c.push(Op::detector([MeasRef(0), MeasRef(1)], DetectorBasis::Z));
        verify_deterministic(&c, 8).unwrap();
    }

    #[test]
    fn random_detector_fails() {
        // A detector on a single Bell-pair measurement is random.
        let mut c = Circuit::new(2);
        c.push(Op::ResetZ(vec![0, 1]));
        c.push(Op::h([0]));
        c.push(Op::cx([(0, 1)]));
        c.push(Op::measure_z([0, 1], 0.0));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        assert!(verify_deterministic(&c, 12).is_err());
    }

    #[test]
    fn random_observable_fails() {
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(vec![0]));
        c.push(Op::h([0]));
        c.push(Op::measure_z([0], 0.0));
        c.push(Op::ObservableInclude {
            observable: 0,
            records: vec![MeasRef(0)],
        });
        assert!(verify_deterministic(&c, 12).is_err());
    }

    #[test]
    fn noise_channels_ignored_by_reference() {
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(vec![0]));
        c.push(Op::Depolarize1 {
            qubits: vec![0],
            p: 1.0,
        });
        c.push(Op::measure_z([0], 0.5));
        c.push(Op::detector([MeasRef(0)], DetectorBasis::Z));
        verify_deterministic(&c, 4).unwrap();
        let run = run_reference(&c, 3);
        assert_eq!(run.detectors, vec![false]);
    }

    #[test]
    fn plus_state_x_stabilizer_round_pair_deterministic() {
        // Two rounds of an X-stabilizer measurement via ancilla: the two
        // outcomes agree, so the pair detector is deterministic even
        // though each round alone is random.
        let mut c = Circuit::new(3);
        c.push(Op::ResetZ(vec![0, 1, 2]));
        for _ in 0..2 {
            c.push(Op::ResetZ(vec![2]));
            c.push(Op::h([2]));
            c.push(Op::cx([(2, 0)]));
            c.push(Op::cx([(2, 1)]));
            c.push(Op::h([2]));
            c.push(Op::measure_z([2], 0.0));
        }
        c.push(Op::detector([MeasRef(0), MeasRef(1)], DetectorBasis::X));
        verify_deterministic(&c, 8).unwrap();
    }
}
