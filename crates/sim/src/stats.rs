//! Logical-error-rate statistics.

use std::fmt;

/// A binomial success-count estimate (e.g. logical errors over shots).
///
/// # Example
///
/// ```
/// use ftqc_sim::BinomialEstimate;
///
/// let e = BinomialEstimate::new(278, 100_000);
/// assert!((e.rate() - 2.78e-3).abs() < 1e-12);
/// let (lo, hi) = e.wilson_interval(1.96);
/// assert!(lo < e.rate() && e.rate() < hi);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinomialEstimate {
    successes: u64,
    trials: u64,
}

impl BinomialEstimate {
    /// Creates an estimate from `successes` out of `trials`.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or `successes > trials`.
    pub fn new(successes: u64, trials: u64) -> BinomialEstimate {
        assert!(trials > 0, "at least one trial required");
        assert!(successes <= trials, "more successes than trials");
        BinomialEstimate { successes, trials }
    }

    /// Number of observed successes.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Point estimate of the success probability.
    pub fn rate(&self) -> f64 {
        self.successes as f64 / self.trials as f64
    }

    /// Standard error of the point estimate.
    pub fn std_err(&self) -> f64 {
        let p = self.rate();
        (p * (1.0 - p) / self.trials as f64).sqrt()
    }

    /// Wilson score interval at `z` standard deviations (1.96 for 95%).
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        let n = self.trials as f64;
        let p = self.rate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// Merges two independent estimates over the same process.
    pub fn merged(&self, other: &BinomialEstimate) -> BinomialEstimate {
        BinomialEstimate::new(self.successes + other.successes, self.trials + other.trials)
    }

    /// The ratio `self.rate() / other.rate()` (the paper's "Reduction"
    /// metric when `self` is Passive and `other` is Active). Returns
    /// `f64::NAN` when `other` observed zero successes.
    pub fn ratio(&self, other: &BinomialEstimate) -> f64 {
        if other.successes == 0 {
            return f64::NAN;
        }
        self.rate() / other.rate()
    }
}

impl fmt::Display for BinomialEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} = {:.3e} ± {:.1e}",
            self.successes,
            self.trials,
            self.rate(),
            self.std_err()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_and_std_err() {
        let e = BinomialEstimate::new(50, 1000);
        assert!((e.rate() - 0.05).abs() < 1e-12);
        assert!((e.std_err() - (0.05f64 * 0.95 / 1000.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn wilson_contains_point_estimate() {
        for &(s, n) in &[(0u64, 100u64), (1, 100), (50, 100), (100, 100)] {
            let e = BinomialEstimate::new(s, n);
            let (lo, hi) = e.wilson_interval(1.96);
            assert!(lo <= e.rate() + 1e-12 && e.rate() <= hi + 1e-12);
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn merge_accumulates() {
        let a = BinomialEstimate::new(3, 100);
        let b = BinomialEstimate::new(7, 300);
        let m = a.merged(&b);
        assert_eq!(m.successes(), 10);
        assert_eq!(m.trials(), 400);
    }

    #[test]
    fn ratio_handles_zero() {
        let a = BinomialEstimate::new(10, 100);
        let b = BinomialEstimate::new(0, 100);
        assert!(a.ratio(&b).is_nan());
        let c = BinomialEstimate::new(5, 100);
        assert!((a.ratio(&c) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        BinomialEstimate::new(0, 0);
    }
}
