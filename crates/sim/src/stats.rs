//! Logical-error-rate statistics.

use std::fmt;

/// A binomial success-count estimate (e.g. logical errors over shots).
///
/// # Example
///
/// ```
/// use ftqc_sim::BinomialEstimate;
///
/// let e = BinomialEstimate::new(278, 100_000);
/// assert!((e.rate() - 2.78e-3).abs() < 1e-12);
/// let (lo, hi) = e.wilson_interval(1.96);
/// assert!(lo < e.rate() && e.rate() < hi);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BinomialEstimate {
    successes: u64,
    trials: u64,
}

impl BinomialEstimate {
    /// Creates an estimate from `successes` out of `trials`.
    ///
    /// # Panics
    ///
    /// Panics if `trials == 0` or `successes > trials`.
    pub fn new(successes: u64, trials: u64) -> BinomialEstimate {
        assert!(trials > 0, "at least one trial required");
        assert!(successes <= trials, "more successes than trials");
        BinomialEstimate { successes, trials }
    }

    /// Number of observed successes.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Number of trials.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Point estimate of the success probability.
    pub fn rate(&self) -> f64 {
        self.successes as f64 / self.trials as f64
    }

    /// Standard error of the point estimate.
    pub fn std_err(&self) -> f64 {
        let p = self.rate();
        (p * (1.0 - p) / self.trials as f64).sqrt()
    }

    /// Wilson score interval at `z` standard deviations (1.96 for 95%).
    pub fn wilson_interval(&self, z: f64) -> (f64, f64) {
        let n = self.trials as f64;
        let p = self.rate();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = (z / denom) * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt();
        ((center - half).max(0.0), (center + half).min(1.0))
    }

    /// Merges two independent estimates over the same process.
    pub fn merged(&self, other: &BinomialEstimate) -> BinomialEstimate {
        BinomialEstimate::new(self.successes + other.successes, self.trials + other.trials)
    }

    /// The ratio `self.rate() / other.rate()` (the paper's "Reduction"
    /// metric when `self` is Passive and `other` is Active). Returns
    /// `f64::NAN` when `other` observed zero successes.
    pub fn ratio(&self, other: &BinomialEstimate) -> f64 {
        if other.successes == 0 {
            return f64::NAN;
        }
        self.rate() / other.rate()
    }
}

/// Incrementally merged logical-error counts over every observable of
/// a circuit — the streaming accumulator behind run-until-confident
/// evaluation.
///
/// Shots arrive in deterministic batches ([`record`]); the running
/// totals can be snapshotted into per-observable [`BinomialEstimate`]s
/// at any point, merged with another accumulator over the same process
/// ([`merge`]), or serialized for checkpoint/resume via
/// [`trials`]/[`failures`] + [`from_parts`].
///
/// [`record`]: RunningEstimate::record
/// [`merge`]: RunningEstimate::merge
/// [`trials`]: RunningEstimate::trials
/// [`failures`]: RunningEstimate::failures
/// [`from_parts`]: RunningEstimate::from_parts
///
/// # Example
///
/// ```
/// use ftqc_sim::{RunningEstimate, StopReason, StopRule};
///
/// let rule = StopRule::max_shots(1_000_000).min_failures(10);
/// let mut state = RunningEstimate::new(1);
/// state.record(5_000, &[12]);
/// assert_eq!(rule.evaluate(&state), Some(StopReason::FailureTarget));
/// assert_eq!(state.estimates()[0].successes(), 12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunningEstimate {
    trials: u64,
    failures: Vec<u64>,
}

impl RunningEstimate {
    /// An empty accumulator over `num_observables` observables.
    pub fn new(num_observables: usize) -> RunningEstimate {
        RunningEstimate {
            trials: 0,
            failures: vec![0; num_observables],
        }
    }

    /// Rebuilds an accumulator from checkpointed totals.
    ///
    /// # Panics
    ///
    /// Panics if any failure count exceeds `trials`.
    pub fn from_parts(trials: u64, failures: Vec<u64>) -> RunningEstimate {
        assert!(
            failures.iter().all(|&f| f <= trials),
            "more failures than trials"
        );
        RunningEstimate { trials, failures }
    }

    /// Folds in one batch: `shots` more trials with `failures[o]`
    /// failures on observable `o`.
    ///
    /// # Panics
    ///
    /// Panics if the observable count mismatches or any count exceeds
    /// `shots`.
    pub fn record(&mut self, shots: u64, failures: &[u64]) {
        assert_eq!(
            failures.len(),
            self.failures.len(),
            "observable count mismatch"
        );
        assert!(
            failures.iter().all(|&f| f <= shots),
            "more failures than shots in batch"
        );
        self.trials += shots;
        for (total, f) in self.failures.iter_mut().zip(failures) {
            *total += f;
        }
    }

    /// Merges another accumulator over the same process.
    ///
    /// # Panics
    ///
    /// Panics if the observable counts differ.
    pub fn merge(&mut self, other: &RunningEstimate) {
        self.record(other.trials, &other.failures);
    }

    /// Total trials accumulated so far.
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Per-observable failure totals.
    pub fn failures(&self) -> &[u64] {
        &self.failures
    }

    /// Number of observables tracked.
    pub fn num_observables(&self) -> usize {
        self.failures.len()
    }

    /// Relative standard error of `observable`'s rate estimate
    /// (`std_err / rate`); infinite until that observable has seen at
    /// least one failure.
    pub fn rse(&self, observable: usize) -> f64 {
        if self.trials == 0 || self.failures[observable] == 0 {
            return f64::INFINITY;
        }
        let e = BinomialEstimate::new(self.failures[observable], self.trials);
        if e.rate() >= 1.0 {
            return 0.0;
        }
        e.std_err() / e.rate()
    }

    /// Snapshots the totals into one [`BinomialEstimate`] per
    /// observable.
    ///
    /// # Panics
    ///
    /// Panics if no trials have been recorded yet.
    pub fn estimates(&self) -> Vec<BinomialEstimate> {
        assert!(self.trials > 0, "no shots recorded");
        self.failures
            .iter()
            .map(|&f| BinomialEstimate::new(f, self.trials))
            .collect()
    }
}

/// Why an adaptive evaluation stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopReason {
    /// Every observable accumulated the configured failure count.
    FailureTarget,
    /// Every observable reached the configured relative standard error.
    RseTarget,
    /// The hard shot ceiling was reached first.
    ShotCeiling,
}

impl fmt::Display for StopReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            StopReason::FailureTarget => "failure target reached",
            StopReason::RseTarget => "relative-standard-error target reached",
            StopReason::ShotCeiling => "shot ceiling reached",
        })
    }
}

/// Stopping criteria for run-until-confident evaluation.
///
/// A rule always carries a hard shot ceiling ([`max_shots`]) and may
/// additionally stop early once **every** observable has accumulated
/// [`min_failures`] failures or reached a relative standard error of
/// at most [`max_rse`] — the accumulate-enough-logical-errors loop
/// standard in decoder evaluation. Confidence criteria win over the
/// ceiling when both are met at the same point.
///
/// [`max_shots`]: StopRule::max_shots
/// [`min_failures`]: StopRule::min_failures
/// [`max_rse`]: StopRule::max_rse
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StopRule {
    min_failures: Option<u64>,
    max_rse: Option<f64>,
    max_shots: u64,
}

impl StopRule {
    /// A rule with only a hard shot ceiling (equivalent to a fixed
    /// `ceiling`-shot run).
    ///
    /// # Panics
    ///
    /// Panics if `ceiling` is zero.
    pub fn max_shots(ceiling: u64) -> StopRule {
        assert!(ceiling > 0, "shot ceiling must be positive");
        StopRule {
            min_failures: None,
            max_rse: None,
            max_shots: ceiling,
        }
    }

    /// Also stop once every observable has at least `failures`
    /// failures.
    ///
    /// # Panics
    ///
    /// Panics if `failures` is zero.
    pub fn min_failures(mut self, failures: u64) -> StopRule {
        assert!(failures > 0, "failure target must be positive");
        self.min_failures = Some(failures);
        self
    }

    /// Also stop once every observable's relative standard error is at
    /// most `rse`.
    ///
    /// # Panics
    ///
    /// Panics unless `rse` is finite and positive.
    pub fn max_rse(mut self, rse: f64) -> StopRule {
        assert!(rse.is_finite() && rse > 0.0, "rse target must be positive");
        self.max_rse = Some(rse);
        self
    }

    /// The hard shot ceiling.
    pub fn shot_ceiling(&self) -> u64 {
        self.max_shots
    }

    /// Whether any early-stopping criterion is configured (false means
    /// the rule degenerates to a fixed-shot run).
    pub fn is_adaptive(&self) -> bool {
        self.min_failures.is_some() || self.max_rse.is_some()
    }

    /// Evaluates the rule against the running totals; `Some` means
    /// stop now.
    pub fn evaluate(&self, state: &RunningEstimate) -> Option<StopReason> {
        if state.trials() > 0 {
            if let Some(target) = self.min_failures {
                if state.failures().iter().all(|&f| f >= target) {
                    return Some(StopReason::FailureTarget);
                }
            }
            if let Some(target) = self.max_rse {
                if (0..state.num_observables()).all(|o| state.rse(o) <= target) {
                    return Some(StopReason::RseTarget);
                }
            }
        }
        if state.trials() >= self.max_shots {
            return Some(StopReason::ShotCeiling);
        }
        None
    }
}

impl fmt::Display for BinomialEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} = {:.3e} ± {:.1e}",
            self.successes,
            self.trials,
            self.rate(),
            self.std_err()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_and_std_err() {
        let e = BinomialEstimate::new(50, 1000);
        assert!((e.rate() - 0.05).abs() < 1e-12);
        assert!((e.std_err() - (0.05f64 * 0.95 / 1000.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn wilson_contains_point_estimate() {
        for &(s, n) in &[(0u64, 100u64), (1, 100), (50, 100), (100, 100)] {
            let e = BinomialEstimate::new(s, n);
            let (lo, hi) = e.wilson_interval(1.96);
            assert!(lo <= e.rate() + 1e-12 && e.rate() <= hi + 1e-12);
            assert!((0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi));
        }
    }

    #[test]
    fn merge_accumulates() {
        let a = BinomialEstimate::new(3, 100);
        let b = BinomialEstimate::new(7, 300);
        let m = a.merged(&b);
        assert_eq!(m.successes(), 10);
        assert_eq!(m.trials(), 400);
    }

    #[test]
    fn ratio_handles_zero() {
        let a = BinomialEstimate::new(10, 100);
        let b = BinomialEstimate::new(0, 100);
        assert!(a.ratio(&b).is_nan());
        let c = BinomialEstimate::new(5, 100);
        assert!((a.ratio(&c) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn zero_trials_panics() {
        BinomialEstimate::new(0, 0);
    }

    #[test]
    fn running_estimate_accumulates_and_snapshots() {
        let mut state = RunningEstimate::new(2);
        state.record(1_000, &[3, 10]);
        state.record(500, &[2, 0]);
        assert_eq!(state.trials(), 1_500);
        assert_eq!(state.failures(), &[5, 10]);
        let est = state.estimates();
        assert_eq!(est[0], BinomialEstimate::new(5, 1_500));
        assert_eq!(est[1], BinomialEstimate::new(10, 1_500));
        let mut other = RunningEstimate::new(2);
        other.record(500, &[1, 1]);
        state.merge(&other);
        assert_eq!(state.trials(), 2_000);
        assert_eq!(state.failures(), &[6, 11]);
    }

    #[test]
    fn running_estimate_roundtrips_through_parts() {
        let mut state = RunningEstimate::new(3);
        state.record(4_096, &[7, 0, 19]);
        let rebuilt = RunningEstimate::from_parts(state.trials(), state.failures().to_vec());
        assert_eq!(rebuilt, state);
    }

    #[test]
    #[should_panic(expected = "observable count mismatch")]
    fn record_checks_observable_count() {
        RunningEstimate::new(2).record(10, &[1]);
    }

    #[test]
    fn rse_tracks_failure_count() {
        let mut state = RunningEstimate::new(2);
        state.record(10_000, &[0, 100]);
        assert!(state.rse(0).is_infinite());
        // rse ~ 1/sqrt(failures) for rare events.
        assert!((state.rse(1) - 0.0995).abs() < 1e-3);
    }

    #[test]
    fn stop_rule_confidence_beats_ceiling() {
        let rule = StopRule::max_shots(1_000).min_failures(5).max_rse(0.5);
        let mut state = RunningEstimate::new(2);
        assert_eq!(rule.evaluate(&state), None); // nothing sampled yet
        state.record(100, &[5, 4]);
        // Observable 1 is short of the failure target but both meet rse.
        assert_eq!(rule.evaluate(&state), Some(StopReason::RseTarget));
        state.record(100, &[3, 1]);
        assert_eq!(rule.evaluate(&state), Some(StopReason::FailureTarget));
    }

    #[test]
    fn stop_rule_ceiling_is_a_backstop() {
        let rule = StopRule::max_shots(200).min_failures(1_000);
        let mut state = RunningEstimate::new(1);
        state.record(100, &[0]);
        assert_eq!(rule.evaluate(&state), None);
        state.record(100, &[0]);
        assert_eq!(rule.evaluate(&state), Some(StopReason::ShotCeiling));
        assert!(rule.is_adaptive());
        assert!(!StopRule::max_shots(200).is_adaptive());
    }
}
