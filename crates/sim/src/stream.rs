//! Round-streaming syndrome extraction ([`RoundSchedule`] /
//! [`RoundStream`]) — the real-time feed behind `ftqc-decoder`'s
//! streaming sliding-window layer.

use crate::frame::{SampleBatch, SyndromeScanner};
use ftqc_circuit::Circuit;

/// Static detector-to-round map of one circuit.
///
/// Rounds are the distinct values of `coords[2]` across the circuit's
/// detectors, in ascending order (the circuit builders use a
/// monotonically increasing round tag, so ascending tag order is
/// emission order). Each round's detector set is compressed into
/// contiguous `[lo, hi)` index runs — for the builders in this
/// workspace every round is a single run, but the schedule does not
/// rely on that.
#[derive(Debug, Clone)]
pub struct RoundSchedule {
    /// Round index of each detector.
    round_of: Vec<u32>,
    /// Run list, grouped by round via `run_off`.
    runs: Vec<(u32, u32)>,
    /// `runs[run_off[r] .. run_off[r + 1]]` are round `r`'s runs.
    run_off: Vec<u32>,
    /// Size of the largest round, in detectors.
    max_round_len: usize,
}

impl RoundSchedule {
    /// Groups `circuit`'s detectors into rounds by their `coords[2]`
    /// tag (NaN tags compare per `f64::total_cmp`).
    ///
    /// # Panics
    ///
    /// Panics if the circuit declares no detectors.
    pub fn from_circuit(circuit: &Circuit) -> RoundSchedule {
        let tags: Vec<f64> = circuit
            .detector_metadata()
            .iter()
            .map(|(_, coords)| coords[2])
            .collect();
        assert!(
            !tags.is_empty(),
            "RoundSchedule requires a circuit with detectors"
        );
        let mut uniq = tags.clone();
        uniq.sort_unstable_by(f64::total_cmp);
        uniq.dedup_by(|a, b| a.total_cmp(b).is_eq());
        let round_of: Vec<u32> = tags
            .iter()
            .map(|t| {
                uniq.binary_search_by(|u| u.total_cmp(t))
                    .expect("tag present in its own dedup") as u32
            })
            .collect();
        // Bucket detectors per round (ascending index within a round by
        // construction), then compress each bucket into runs.
        let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); uniq.len()];
        for (d, &r) in round_of.iter().enumerate() {
            buckets[r as usize].push(d as u32);
        }
        let mut runs = Vec::new();
        let mut run_off = Vec::with_capacity(uniq.len() + 1);
        run_off.push(0u32);
        let mut max_round_len = 0usize;
        for dets in &buckets {
            max_round_len = max_round_len.max(dets.len());
            let mut iter = dets.iter().copied();
            let first = iter.next().expect("every round tag has a detector");
            let (mut lo, mut hi) = (first, first + 1);
            for d in iter {
                if d == hi {
                    hi += 1;
                } else {
                    runs.push((lo, hi));
                    lo = d;
                    hi = d + 1;
                }
            }
            runs.push((lo, hi));
            run_off.push(runs.len() as u32);
        }
        RoundSchedule {
            round_of,
            runs,
            run_off,
            max_round_len,
        }
    }

    /// Number of rounds (distinct `coords[2]` tags).
    pub fn num_rounds(&self) -> u32 {
        (self.run_off.len() - 1) as u32
    }

    /// Number of detectors covered by the schedule.
    pub fn num_detectors(&self) -> u32 {
        self.round_of.len() as u32
    }

    /// The round detector `d` is measured in.
    ///
    /// # Panics
    ///
    /// Panics if `d` is out of range.
    pub fn round_of(&self, d: u32) -> u32 {
        self.round_of[d as usize]
    }

    /// Round `r`'s detectors as contiguous `[lo, hi)` index runs.
    ///
    /// # Panics
    ///
    /// Panics if `r >= num_rounds()`.
    pub fn runs_in(&self, r: u32) -> &[(u32, u32)] {
        let (a, b) = (self.run_off[r as usize], self.run_off[r as usize + 1]);
        &self.runs[a as usize..b as usize]
    }

    /// Detector indices of round `r`, ascending.
    ///
    /// # Panics
    ///
    /// Panics if `r >= num_rounds()`.
    pub fn detectors_in(&self, r: u32) -> impl Iterator<Item = u32> + '_ {
        self.runs_in(r).iter().flat_map(|&(lo, hi)| lo..hi)
    }

    /// Size of the largest round, in detectors — the worst-case length
    /// of any per-round defect list, for presizing stream buffers.
    pub fn max_round_len(&self) -> usize {
        self.max_round_len
    }

    /// The detector-index envelope `[lo, hi)` of round `r`: the
    /// smallest contiguous index range containing every detector of the
    /// round. For the circuit builders in this workspace each round is
    /// a single run, so the envelope is exact; for interleaved rounds
    /// it may cover foreign detectors, which windowed-fusion consumers
    /// treat as a (harmless) widening of the round slice.
    ///
    /// # Panics
    ///
    /// Panics if `r >= num_rounds()`.
    pub fn round_envelope(&self, r: u32) -> (u32, u32) {
        let runs = self.runs_in(r);
        let lo = runs.iter().map(|&(lo, _)| lo).min().expect("round has runs");
        let hi = runs.iter().map(|&(_, hi)| hi).max().expect("round has runs");
        (lo, hi)
    }

    /// The merged detector-index envelope of the round range
    /// `[lo_round, hi_round)` (clamped to the schedule), or `(0, 0)`
    /// when the clamped range is empty — the contiguous detector slice
    /// a windowed-fusion decoder materializes for that round window.
    pub fn window_envelope(&self, lo_round: u32, hi_round: u32) -> (u32, u32) {
        let hi_round = hi_round.min(self.num_rounds());
        let lo_round = lo_round.min(hi_round);
        if lo_round == hi_round {
            return (0, 0);
        }
        let mut lo = u32::MAX;
        let mut hi = 0;
        for r in lo_round..hi_round {
            let (rlo, rhi) = self.round_envelope(r);
            lo = lo.min(rlo);
            hi = hi.max(rhi);
        }
        (lo, hi)
    }
}

/// Replays one shot of a [`SampleBatch`] round by round.
///
/// Batch evaluation hands a decoder each shot's *complete* syndrome. A
/// real-time decoder never sees that: syndrome bits arrive one
/// measurement round at a time, and the decoder must act on a prefix.
/// `RoundStream` is the sim-side half of that pipeline — an
/// iterator-style cursor that emits each round's flagged detectors as
/// it is extracted, not after the whole batch. Concatenating the
/// emitted rounds of a shot reproduces exactly the batch extraction
/// ([`SyndromeScanner::flagged_into`]); this crate's tests and
/// `ftqc-decoder`'s streaming identity suite pin that.
///
/// The stream owns a [`SyndromeScanner`], so consecutive shots of the
/// same 64-shot block share one transpose; per-round extraction is a
/// masked word scan over the transposed shot row
/// ([`SyndromeScanner::flagged_range_into`]). After the scanner's
/// buffers warm up, streaming a round allocates nothing.
///
/// Usage mirrors the scanner: [`begin_batch`](RoundStream::begin_batch)
/// once per batch, [`begin_shot`](RoundStream::begin_shot) per shot,
/// then [`next_round_into`](RoundStream::next_round_into) until it
/// returns `None`.
///
/// # Example
///
/// ```
/// use ftqc_circuit::{Circuit, DetectorBasis, MeasRef, Op};
/// use ftqc_sim::{sample_batch, RoundSchedule, RoundStream};
///
/// // Two noisy rounds of a single repeated measurement: detector 0
/// // compares nothing (round 0), detector 1 compares rounds 0 and 1.
/// let mut c = Circuit::new(1);
/// c.push(Op::ResetZ(vec![0]));
/// c.push(Op::measure_z([0], 0.02));
/// c.push(Op::Detector {
///     records: vec![MeasRef(0)],
///     basis: DetectorBasis::Z,
///     coords: [0.0, 0.0, 0.0], // round tag 0
/// });
/// c.push(Op::measure_z([0], 0.02));
/// c.push(Op::Detector {
///     records: vec![MeasRef(0), MeasRef(1)],
///     basis: DetectorBasis::Z,
///     coords: [0.0, 0.0, 1.0], // round tag 1
/// });
///
/// let schedule = RoundSchedule::from_circuit(&c);
/// assert_eq!(schedule.num_rounds(), 2);
/// assert_eq!(schedule.round_of(1), 1);
///
/// let batch = sample_batch(&c, 64, 7);
/// let mut stream = RoundStream::new(&schedule);
/// stream.begin_batch(&batch);
/// stream.begin_shot(3);
/// let mut defects = Vec::new();
/// let mut full = Vec::new();
/// while let Some(_round) = stream.next_round_into(&batch, &mut defects) {
///     full.extend_from_slice(&defects);
/// }
/// // Rounds concatenate to the batch-extracted syndrome.
/// let mut batch_syndrome = Vec::new();
/// batch.flagged_detectors_into(3, &mut batch_syndrome);
/// assert_eq!(full, batch_syndrome);
/// ```
#[derive(Debug)]
pub struct RoundStream<'a> {
    schedule: &'a RoundSchedule,
    scanner: SyndromeScanner,
    shot: usize,
    next_round: u32,
}

impl<'a> RoundStream<'a> {
    /// A stream over `schedule`; sized by the first
    /// [`begin_batch`](RoundStream::begin_batch).
    pub fn new(schedule: &'a RoundSchedule) -> RoundStream<'a> {
        RoundStream {
            schedule,
            scanner: SyndromeScanner::new(),
            shot: 0,
            next_round: u32::MAX,
        }
    }

    /// The schedule this stream replays.
    pub fn schedule(&self) -> &'a RoundSchedule {
        self.schedule
    }

    /// Re-arms the stream (and its scanner) for `batch`. Call
    /// [`begin_shot`](RoundStream::begin_shot) before reading rounds.
    ///
    /// # Panics
    ///
    /// Panics if the batch's detector count differs from the
    /// schedule's.
    pub fn begin_batch(&mut self, batch: &SampleBatch) {
        assert_eq!(
            batch.num_detectors,
            self.schedule.num_detectors() as usize,
            "batch and RoundSchedule disagree on detector count"
        );
        self.scanner.begin_batch(batch);
        self.next_round = u32::MAX;
    }

    /// Positions the stream at round 0 of shot `s`.
    pub fn begin_shot(&mut self, s: usize) {
        self.shot = s;
        self.next_round = 0;
    }

    /// Emits the next round's flagged detectors (ascending) into
    /// `out` (cleared first) and returns that round's index, or `None`
    /// once every round of the shot has been emitted. An empty `out`
    /// with `Some(r)` is a defect-free round, not end of shot.
    pub fn next_round_into(&mut self, batch: &SampleBatch, out: &mut Vec<u32>) -> Option<u32> {
        let r = self.next_round;
        if r >= self.schedule.num_rounds() {
            return None;
        }
        out.clear();
        for &(lo, hi) in self.schedule.runs_in(r) {
            self.scanner
                .flagged_range_into(batch, self.shot, lo, hi, out);
        }
        self.next_round = r + 1;
        Some(r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::sample_batch;
    use ftqc_circuit::{DetectorBasis, MeasRef, Op};

    /// A chain of `rounds` noisy repeated measurements of `k` qubits:
    /// `k` detectors per round, round tag in `coords[2]`.
    fn chain_circuit(k: u32, rounds: u32, p: f64) -> Circuit {
        let mut c = Circuit::new(k);
        c.push(Op::ResetZ((0..k).collect()));
        for r in 0..rounds {
            c.push(Op::measure_z(0..k, p));
            for q in 0..k {
                let records = if r == 0 {
                    vec![MeasRef(k - 1 - q)]
                } else {
                    vec![MeasRef(k - 1 - q), MeasRef(2 * k - 1 - q)]
                };
                c.push(Op::Detector {
                    records,
                    basis: DetectorBasis::Z,
                    coords: [q as f64, 0.0, r as f64],
                });
            }
        }
        c
    }

    #[test]
    fn schedule_partitions_detectors() {
        let c = chain_circuit(3, 4, 0.1);
        let s = RoundSchedule::from_circuit(&c);
        assert_eq!(s.num_rounds(), 4);
        assert_eq!(s.num_detectors(), 12);
        assert_eq!(s.max_round_len(), 3);
        let mut seen = [false; 12];
        for r in 0..s.num_rounds() {
            for d in s.detectors_in(r) {
                assert_eq!(s.round_of(d), r);
                assert!(!seen[d as usize], "detector {d} in two rounds");
                seen[d as usize] = true;
            }
        }
        assert!(seen.iter().all(|&x| x), "schedule must cover all detectors");
    }

    #[test]
    fn rounds_concatenate_to_batch_extraction() {
        let c = chain_circuit(5, 6, 0.15);
        let schedule = RoundSchedule::from_circuit(&c);
        let batch = sample_batch(&c, 200, 11);
        let mut stream = RoundStream::new(&schedule);
        stream.begin_batch(&batch);
        let mut defects = Vec::new();
        for s in 0..batch.shots {
            stream.begin_shot(s);
            let mut full = Vec::new();
            let mut rounds_seen = 0;
            while let Some(r) = stream.next_round_into(&batch, &mut defects) {
                assert_eq!(r, rounds_seen);
                rounds_seen += 1;
                full.extend_from_slice(&defects);
            }
            assert_eq!(rounds_seen, schedule.num_rounds());
            let mut reference = Vec::new();
            batch.flagged_detectors_into(s, &mut reference);
            assert_eq!(full, reference, "shot {s}");
        }
    }

    #[test]
    fn range_scan_matches_filtered_full_scan() {
        let c = chain_circuit(7, 11, 0.2); // 77 detectors: crosses a word boundary
        let batch = sample_batch(&c, 130, 23);
        let mut scanner = SyndromeScanner::new();
        scanner.begin_batch(&batch);
        let mut full = Vec::new();
        for s in [0, 63, 64, 129] {
            scanner.flagged_into(&batch, s, &mut full);
            for (lo, hi) in [
                (0u32, 77u32),
                (0, 64),
                (64, 77),
                (13, 13),
                (5, 66),
                (70, 999),
            ] {
                let mut ranged = Vec::new();
                scanner.flagged_range_into(&batch, s, lo, hi, &mut ranged);
                let expect: Vec<u32> = full
                    .iter()
                    .copied()
                    .filter(|&d| d >= lo && d < hi.min(77))
                    .collect();
                assert_eq!(ranged, expect, "shot {s} range {lo}..{hi}");
            }
        }
    }

    #[test]
    fn envelopes_cover_their_rounds() {
        let c = chain_circuit(3, 4, 0.1);
        let s = RoundSchedule::from_circuit(&c);
        for r in 0..s.num_rounds() {
            let (lo, hi) = s.round_envelope(r);
            for d in s.detectors_in(r) {
                assert!(d >= lo && d < hi, "round {r} detector {d} outside [{lo},{hi})");
            }
        }
        // Contiguous builders: the window envelope is the union of the
        // per-round envelopes, and clamping is saturating.
        assert_eq!(s.window_envelope(0, 4), (0, 12));
        assert_eq!(s.window_envelope(1, 3), (3, 9));
        assert_eq!(s.window_envelope(2, 99), (6, 12));
        assert_eq!(s.window_envelope(4, 4), (0, 0));
        assert_eq!(s.window_envelope(7, 5), (0, 0));
    }

    #[test]
    fn non_contiguous_rounds_form_runs() {
        // Interleave two rounds' detectors: tags 0,1,0,1 → round 0 is
        // runs [0,1) and [2,3).
        let mut c = Circuit::new(1);
        c.push(Op::ResetZ(vec![0]));
        for tag in [0.0, 1.0, 0.0, 1.0] {
            c.push(Op::measure_z([0], 0.1));
            c.push(Op::Detector {
                records: vec![MeasRef(0)],
                basis: DetectorBasis::Z,
                coords: [0.0, 0.0, tag],
            });
        }
        let s = RoundSchedule::from_circuit(&c);
        assert_eq!(s.num_rounds(), 2);
        assert_eq!(s.runs_in(0), &[(0, 1), (2, 3)]);
        assert_eq!(s.runs_in(1), &[(1, 2), (3, 4)]);
        let batch = sample_batch(&c, 64, 5);
        let mut stream = RoundStream::new(&s);
        stream.begin_batch(&batch);
        let mut defects = Vec::new();
        for shot in 0..batch.shots {
            stream.begin_shot(shot);
            let mut by_round: Vec<Vec<u32>> = Vec::new();
            while stream.next_round_into(&batch, &mut defects).is_some() {
                by_round.push(defects.clone());
            }
            let mut reference = Vec::new();
            batch.flagged_detectors_into(shot, &mut reference);
            let mut merged: Vec<u32> = by_round.concat();
            merged.sort_unstable();
            assert_eq!(merged, reference, "shot {shot}");
        }
    }
}
