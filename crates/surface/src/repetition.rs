//! The three-qubit repetition code of paper Fig. 1(c).

use ftqc_circuit::{DetectorBasis, MeasRef, Op, Schedule};
use ftqc_noise::HardwareConfig;

/// Configuration of the repetition-code idling experiment the paper ran
/// on IBM Sherbrooke (Fig. 1c): a three-qubit bit-flip code executes
/// `rounds` rounds of syndrome measurement with an idle period inserted
/// before the final round, and the logical error rate is measured as a
/// function of that idle period.
#[derive(Debug, Clone)]
pub struct RepetitionConfig {
    /// Syndrome measurement rounds (the paper uses 2).
    pub rounds: u32,
    /// Idle inserted before the final round, nanoseconds.
    pub idle_before_final_ns: f64,
    /// Hardware timing and coherence parameters.
    pub hardware: HardwareConfig,
    /// Prepare the `|1>_L = |111>` logical observable instead of
    /// `|0>_L` (under the symmetric Pauli-twirl idle model both decay
    /// identically; the hardware asymmetry of Fig. 1c comes from
    /// amplitude damping, see DESIGN.md).
    pub logical_one: bool,
}

impl RepetitionConfig {
    /// The paper's two-round experiment with the given idle period.
    pub fn new(hardware: &HardwareConfig, idle_before_final_ns: f64) -> RepetitionConfig {
        RepetitionConfig {
            rounds: 2,
            idle_before_final_ns,
            hardware: hardware.clone(),
            logical_one: false,
        }
    }

    /// Builds the timed schedule (see [`repetition_code_schedule`]).
    pub fn build(&self) -> Schedule {
        repetition_code_schedule(self)
    }
}

/// Builds the three-qubit repetition-code schedule. Qubits 0–2 are
/// data, 3–4 are the `Z0 Z1` / `Z1 Z2` ancillas; observable 0 is the
/// logical `Z` readout.
///
/// # Panics
///
/// Panics if `rounds == 0` or the idle period is negative.
pub fn repetition_code_schedule(cfg: &RepetitionConfig) -> Schedule {
    assert!(cfg.rounds > 0, "at least one round required");
    assert!(cfg.idle_before_final_ns >= 0.0, "idle must be non-negative");
    let hw = &cfg.hardware;
    let mut s = Schedule::new(5);
    let (d0, d1, d2, a0, a1) = (0u32, 1, 2, 3, 4);
    let mut t = 0.0;
    s.push(t, hw.reset_ns, Op::ResetZ(vec![d0, d1, d2, a0, a1]));
    t += hw.reset_ns;
    if cfg.logical_one {
        s.push(t, hw.gate_1q_ns, Op::X(vec![d0, d1, d2]));
        t += hw.gate_1q_ns;
    }
    let mut rec = 0u32;
    let mut last = [MeasRef(0), MeasRef(0)];
    for r in 0..cfg.rounds {
        if r + 1 == cfg.rounds {
            t += cfg.idle_before_final_ns;
        }
        s.push(t, hw.gate_2q_ns, Op::cx([(d0, a0), (d1, a1)]));
        t += hw.gate_2q_ns;
        s.push(t, hw.gate_2q_ns, Op::cx([(d1, a0), (d2, a1)]));
        t += hw.gate_2q_ns;
        s.push(
            t,
            hw.readout_ns + hw.reset_ns,
            Op::measure_reset([a0, a1], 0.0),
        );
        t += hw.readout_ns + hw.reset_ns;
        for k in 0..2u32 {
            let this = MeasRef(rec + k);
            let records = if r == 0 {
                vec![this]
            } else {
                vec![last[k as usize], this]
            };
            s.push(
                t,
                0.0,
                Op::Detector {
                    records,
                    basis: DetectorBasis::Z,
                    coords: [k as f64, 0.0, r as f64],
                },
            );
            last[k as usize] = this;
        }
        rec += 2;
    }
    // Destructive data readout: final parity detectors + logical Z.
    s.push(t, hw.readout_ns, Op::measure_z([d0, d1, d2], 0.0));
    let (r0, r1, r2) = (MeasRef(rec), MeasRef(rec + 1), MeasRef(rec + 2));
    let t_end = t + hw.readout_ns;
    s.push(
        t_end,
        0.0,
        Op::Detector {
            records: vec![r0, r1, last[0]],
            basis: DetectorBasis::Z,
            coords: [0.0, 0.0, cfg.rounds as f64],
        },
    );
    s.push(
        t_end,
        0.0,
        Op::Detector {
            records: vec![r1, r2, last[1]],
            basis: DetectorBasis::Z,
            coords: [1.0, 0.0, cfg.rounds as f64],
        },
    );
    s.push(
        t_end,
        0.0,
        Op::ObservableInclude {
            observable: 0,
            records: vec![r0],
        },
    );
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqc_noise::CircuitNoiseModel;
    use ftqc_sim::{sample_batch, verify_deterministic};

    #[test]
    fn deterministic_without_noise() {
        for logical_one in [false, true] {
            let mut cfg = RepetitionConfig::new(&HardwareConfig::ibm(), 400.0);
            cfg.logical_one = logical_one;
            let c = CircuitNoiseModel::ideal().apply(&cfg.build());
            c.validate().unwrap();
            verify_deterministic(&c, 6).unwrap();
        }
    }

    #[test]
    fn idle_period_increases_error_rate() {
        let hw = HardwareConfig::google();
        let model = CircuitNoiseModel::standard(1e-3, &hw);
        let rate = |idle: f64| {
            let cfg = RepetitionConfig::new(&hw, idle);
            let c = model.apply(&cfg.build());
            let b = sample_batch(&c, 20_000, 7);
            (0..b.shots).filter(|&s| b.observable(0, s)).count() as f64 / b.shots as f64
        };
        let short = rate(0.0);
        let long = rate(5_000.0);
        assert!(
            long > short,
            "idling must raise the raw flip rate ({short} vs {long})"
        );
    }

    #[test]
    fn more_rounds_more_records() {
        let mut cfg = RepetitionConfig::new(&HardwareConfig::ibm(), 0.0);
        cfg.rounds = 5;
        let c = CircuitNoiseModel::ideal().apply(&cfg.build());
        assert_eq!(c.num_measurements(), 5 * 2 + 3);
        assert_eq!(c.num_detectors(), 5 * 2 + 2);
    }
}
