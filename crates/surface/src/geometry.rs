//! Rotated surface code lattice geometry.
//!
//! Coordinates follow the usual rotated-code picture: data qubits live
//! at odd-odd positions `(2i+1, 2j+1)` for data column `i` and row `j`,
//! and stabilizer measure qubits at even-even positions `(2a, 2b)`.
//! The checkerboard parity of `(a + b)` splits the measure qubits into
//! two roles:
//!
//! * **odd checks** (`(a + b)` odd) — the "merge type": they host the
//!   top/bottom boundary half-checks, their vertical string is the
//!   logical that Lattice Surgery multiplies (`X` type for the paper's
//!   Z-basis surgery, `Z` type for X-basis surgery), and the *new*
//!   stabilizers created along a merge seam are exactly of this type;
//! * **even checks** (`(a + b)` even) — they host the left/right
//!   boundary half-checks and get *extended* across the seam at merge
//!   time.
//!
//! A [`Lattice`] enumerates the measure qubits of a rectangular region
//! of data columns; the Lattice Surgery builder uses three regions: the
//! left patch `P`, the right patch `P'` and the merged patch spanning
//! both plus the one-column buffer.

/// The checkerboard role of a stabilizer (see module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StabKind {
    /// `(a + b)` odd: merge-type checks (top/bottom half-checks, new
    /// seam stabilizers, vertical logical strings).
    Odd,
    /// `(a + b)` even: left/right half-checks, extended at merges.
    Even,
}

/// A stabilizer measure qubit of a patch region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ancilla {
    /// Ancilla grid coordinate `a` (x = 2a).
    pub a: u32,
    /// Ancilla grid coordinate `b` (y = 2b).
    pub b: u32,
    /// Checkerboard role.
    pub kind: StabKind,
    /// Data-qubit `(column, row)` neighbours inside the region, in
    /// fixed corner order `(NE, NW, SE, SW)` relative to the ancilla —
    /// entries are `None` where the neighbour falls outside the region.
    pub neighbors: [Option<(u32, u32)>; 4],
}

impl Ancilla {
    /// Number of data-qubit neighbours inside the region.
    pub fn degree(&self) -> usize {
        self.neighbors.iter().flatten().count()
    }

    /// Neighbours present, in corner order.
    pub fn support(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.neighbors.iter().flatten().copied()
    }
}

/// A rectangular rotated-lattice region of data columns
/// `col_lo ..= col_hi` with `d` data rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lattice {
    /// Code distance: number of data rows (and columns per patch).
    pub d: u32,
    /// First data column of the region.
    pub col_lo: u32,
    /// Last data column of the region.
    pub col_hi: u32,
}

impl Lattice {
    /// A single-patch region of `d` columns starting at `col_lo`.
    ///
    /// # Panics
    ///
    /// Panics when `d` is even or zero (rotated codes need odd `d`).
    pub fn patch(d: u32, col_lo: u32) -> Lattice {
        assert!(d % 2 == 1, "code distance must be odd, got {d}");
        Lattice {
            d,
            col_lo,
            col_hi: col_lo + d - 1,
        }
    }

    /// The merged region spanning two distance-`d` patches and the
    /// buffer column between them: columns `0 ..= 2d`.
    pub fn merged(d: u32) -> Lattice {
        assert!(d % 2 == 1, "code distance must be odd, got {d}");
        Lattice {
            d,
            col_lo: 0,
            col_hi: 2 * d,
        }
    }

    /// Data `(column, row)` pairs of the region, column-major.
    pub fn data_coords(&self) -> Vec<(u32, u32)> {
        let mut v = Vec::new();
        for i in self.col_lo..=self.col_hi {
            for j in 0..self.d {
                v.push((i, j));
            }
        }
        v
    }

    /// Checkerboard role of the measure-qubit candidate at `(a, b)`.
    pub fn kind_of(a: u32, b: u32) -> StabKind {
        if (a + b) % 2 == 1 {
            StabKind::Odd
        } else {
            StabKind::Even
        }
    }

    /// The stabilizer measure qubits of the region, with their in-region
    /// supports. Implements the rotated-code boundary rules: interior
    /// candidates (degree 4) are always present; degree-2 candidates on
    /// the top/bottom boundary must be [`StabKind::Odd`], on the
    /// left/right boundary [`StabKind::Even`]; corners are absent.
    pub fn ancillas(&self) -> Vec<Ancilla> {
        let mut out = Vec::new();
        for a in self.col_lo..=self.col_hi + 1 {
            for b in 0..=self.d {
                let kind = Lattice::kind_of(a, b);
                // Corner order (NE, NW, SE, SW) in (col, row) space:
                // (a, b-1), (a-1, b-1), (a, b), (a-1, b) are the data
                // cells diagonally adjacent to ancilla corner (a, b).
                let cand = [
                    (a as i64, b as i64 - 1),
                    (a as i64 - 1, b as i64 - 1),
                    (a as i64, b as i64),
                    (a as i64 - 1, b as i64),
                ];
                let mut neighbors = [None; 4];
                let mut degree = 0;
                for (slot, (ci, rj)) in cand.iter().enumerate() {
                    if *ci >= self.col_lo as i64
                        && *ci <= self.col_hi as i64
                        && *rj >= 0
                        && *rj < self.d as i64
                    {
                        neighbors[slot] = Some((*ci as u32, *rj as u32));
                        degree += 1;
                    }
                }
                let present = match degree {
                    4 => true,
                    2 => {
                        let on_vertical_boundary = a == self.col_lo || a == self.col_hi + 1;
                        let on_horizontal_boundary = b == 0 || b == self.d;
                        if on_horizontal_boundary && !on_vertical_boundary {
                            kind == StabKind::Odd
                        } else if on_vertical_boundary && !on_horizontal_boundary {
                            kind == StabKind::Even
                        } else {
                            false
                        }
                    }
                    _ => false,
                };
                if present {
                    out.push(Ancilla {
                        a,
                        b,
                        kind,
                        neighbors,
                    });
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patch_stabilizer_count_is_d_squared_minus_one() {
        for d in [3u32, 5, 7] {
            let l = Lattice::patch(d, 0);
            assert_eq!(l.ancillas().len() as u32, d * d - 1, "d = {d}");
            assert_eq!(l.data_coords().len() as u32, d * d);
        }
    }

    #[test]
    fn merged_region_is_a_valid_rotated_code() {
        let d = 3;
        let l = Lattice::merged(d);
        let w = 2 * d + 1;
        assert_eq!(l.data_coords().len() as u32, d * w);
        assert_eq!(l.ancillas().len() as u32, d * w - 1);
    }

    #[test]
    fn kinds_balance() {
        let l = Lattice::patch(5, 0);
        let anc = l.ancillas();
        let odd = anc.iter().filter(|a| a.kind == StabKind::Odd).count();
        let even = anc.iter().filter(|a| a.kind == StabKind::Even).count();
        assert_eq!(odd + even, 24);
        assert_eq!(odd, 12);
        assert_eq!(even, 12);
    }

    #[test]
    fn boundary_roles() {
        let d = 5;
        let l = Lattice::patch(d, 0);
        for anc in l.ancillas() {
            match anc.degree() {
                4 => {
                    assert!(anc.a >= 1 && anc.a <= d - 1 + 1);
                }
                2 => {
                    if anc.b == 0 || anc.b == d {
                        assert_eq!(anc.kind, StabKind::Odd, "top/bottom host odd checks");
                    } else {
                        assert_eq!(anc.kind, StabKind::Even, "left/right host even checks");
                        assert!(anc.a == 0 || anc.a == d);
                    }
                }
                deg => panic!("unexpected degree {deg}"),
            }
        }
    }

    #[test]
    fn stabilizers_commute_pairwise() {
        // Odd and even checks overlap on 0 or 2 data qubits.
        let l = Lattice::merged(3);
        let anc = l.ancillas();
        for x in anc.iter().filter(|a| a.kind == StabKind::Odd) {
            for z in anc.iter().filter(|a| a.kind == StabKind::Even) {
                let overlap = x.support().filter(|q| z.support().any(|p| p == *q)).count();
                assert!(
                    overlap % 2 == 0,
                    "anticommuting pair at ({},{}) / ({},{})",
                    x.a,
                    x.b,
                    z.a,
                    z.b
                );
            }
        }
    }

    #[test]
    fn seam_structure_between_patches() {
        // New-at-merge ancillas are exactly the odd-kind ones of the
        // seam; even-kind seam ancillas exist pre-merge as half-checks
        // and get extended.
        let d = 3;
        let p = Lattice::patch(d, 0);
        let q = Lattice::patch(d, d + 1);
        let m = Lattice::merged(d);
        let pre: Vec<(u32, u32)> = p
            .ancillas()
            .iter()
            .chain(q.ancillas().iter())
            .map(|a| (a.a, a.b))
            .collect();
        let mut new_odd = 0;
        let mut new_even = 0;
        for anc in m.ancillas() {
            if !pre.contains(&(anc.a, anc.b)) {
                match anc.kind {
                    StabKind::Odd => new_odd += 1,
                    StabKind::Even => new_even += 1,
                }
                assert!(anc.a == d || anc.a == d + 1, "new checks sit on the seam");
            }
        }
        assert_eq!(new_even, 0, "even checks are extended, never new");
        assert_eq!(new_odd as u32, d + 1, "d + 1 new merge-type checks");
    }

    #[test]
    fn extended_seam_checks_change_degree() {
        let d = 3;
        let p = Lattice::patch(d, 0);
        let m = Lattice::merged(d);
        // P's right-boundary half-checks at a = d have degree 2 in P and
        // degree 4 in the merged region.
        for anc in p.ancillas().iter().filter(|a| a.a == d) {
            assert_eq!(anc.degree(), 2);
            let merged = m
                .ancillas()
                .into_iter()
                .find(|x| (x.a, x.b) == (anc.a, anc.b))
                .expect("survives the merge");
            assert_eq!(merged.degree(), 4);
        }
    }

    #[test]
    #[should_panic(expected = "odd")]
    fn even_distance_rejected() {
        Lattice::patch(4, 0);
    }
}
