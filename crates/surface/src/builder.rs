//! Timed circuit generation for memory and Lattice Surgery experiments.

use crate::geometry::{Ancilla, Lattice, StabKind};
use ftqc_circuit::{DetectorBasis, MeasRef, Op, Qubit, Schedule};
use ftqc_noise::HardwareConfig;
use ftqc_sync::{PolicySpec, SyncPlan};
use std::collections::HashMap;

/// Observable index of `X_P` (resp. `Z_P` for X-basis surgery).
pub const OBS_P: u32 = 0;
/// Observable index of `X_P'` (resp. `Z_P'`).
pub const OBS_P_PRIME: u32 = 1;
/// Observable index of the Lattice Surgery parity `X_P X_P'` (resp.
/// `Z_P Z_P'`) — the product of the first-round outcomes of the new
/// seam stabilizers, i.e. the logical measurement the surgery performs
/// (paper Fig. 13).
pub const OBS_MERGED: u32 = 2;

/// Which Lattice Surgery basis to perform, following the paper's
/// naming: `Z`-basis surgery measures `X_P X_P'` (patches initialized
/// in `|+>`, observables `X_P X_P'` and `X_P`), `X`-basis surgery is
/// the CSS dual.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LsBasis {
    /// Z-basis surgery (`X_P X_P'` measurement).
    Z,
    /// X-basis surgery (`Z_P Z_P'` measurement).
    X,
}

impl LsBasis {
    /// Whether odd-kind checks are physically X-type stabilizers.
    fn odd_is_x(self) -> bool {
        matches!(self, LsBasis::Z)
    }
}

/// Configuration for the two-patch Lattice Surgery experiment of paper
/// Fig. 13.
#[derive(Debug, Clone)]
pub struct LatticeSurgeryConfig {
    /// Code distance `d` of both patches.
    pub distance: u32,
    /// Surgery basis.
    pub basis: LsBasis,
    /// Hardware timing parameters.
    pub hardware: HardwareConfig,
    /// Syndrome rounds per patch before the merge (the paper uses
    /// `d + 1`).
    pub pre_rounds: u32,
    /// Merged syndrome rounds before the destructive readout (`d + 1`).
    pub merged_rounds: u32,
    /// Synchronization plan applied to the leading patch `P`.
    pub plan: SyncPlan,
    /// Extra idle inserted into each round of the lagging patch `P'`,
    /// emulating the longer syndrome cycle of a different code (e.g.
    /// `T_P' - T_P` worth of additional CNOT layers for color/qLDPC
    /// patches, paper Section 7.3).
    pub lagging_round_stretch_ns: f64,
}

impl LatticeSurgeryConfig {
    /// A synchronized (no-slack) experiment at distance `d` with the
    /// paper's default `d + 1` pre-merge and merged rounds.
    ///
    /// # Panics
    ///
    /// Panics if `d` is even.
    pub fn new(distance: u32, hardware: &HardwareConfig) -> LatticeSurgeryConfig {
        assert!(distance % 2 == 1, "code distance must be odd");
        LatticeSurgeryConfig {
            distance,
            basis: LsBasis::Z,
            hardware: hardware.clone(),
            pre_rounds: distance + 1,
            merged_rounds: distance + 1,
            plan: SyncPlan::noop(PolicySpec::Passive, distance + 1),
            lagging_round_stretch_ns: 0.0,
        }
    }

    /// Builds the timed schedule (see [`lattice_surgery_schedule`]).
    pub fn build(&self) -> Schedule {
        lattice_surgery_schedule(self)
    }
}

/// Configuration for a single-patch memory experiment.
#[derive(Debug, Clone)]
pub struct MemoryConfig {
    /// Code distance.
    pub distance: u32,
    /// Memory basis (uses the same orientation conventions as the
    /// corresponding surgery basis).
    pub basis: LsBasis,
    /// Hardware timing parameters.
    pub hardware: HardwareConfig,
    /// Number of syndrome rounds.
    pub rounds: u32,
    /// Idle inserted before each round (for idling studies); must have
    /// `rounds` entries or be empty.
    pub pre_round_idle_ns: Vec<f64>,
    /// Idle inserted right before the final readout.
    pub final_idle_ns: f64,
}

impl MemoryConfig {
    /// An idle-free memory experiment of `rounds` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `d` is even.
    pub fn new(distance: u32, rounds: u32, hardware: &HardwareConfig) -> MemoryConfig {
        assert!(distance % 2 == 1, "code distance must be odd");
        MemoryConfig {
            distance,
            basis: LsBasis::Z,
            hardware: hardware.clone(),
            rounds,
            pre_round_idle_ns: Vec::new(),
            final_idle_ns: 0.0,
        }
    }

    /// Builds the timed schedule (see [`memory_schedule`]).
    pub fn build(&self) -> Schedule {
        memory_schedule(self)
    }
}

/// Per-ancilla CNOT corner orders (indices into
/// [`Ancilla::neighbors`], which is `(NE, NW, SE, SW)`). The pair is
/// conflict-free (no data qubit touched twice per layer), measures
/// commuting stabilizers, and routes hook errors parallel to the
/// tracked logical strings.
const ODD_ORDER: [usize; 4] = [0, 1, 2, 3]; // NE, NW, SE, SW
const EVEN_ORDER: [usize; 4] = [0, 2, 1, 3]; // NE, SE, NW, SW

struct Emitter {
    sched: Schedule,
    hw: HardwareConfig,
    basis: LsBasis,
    d: u32,
    /// Measurement records emitted so far.
    records: u32,
    /// Last measurement of each ancilla, by grid coordinate.
    last_meas: HashMap<(u32, u32), MeasRef>,
    /// Global round counter (detector coordinates).
    round_tag: u32,
}

impl Emitter {
    fn data_qubit(&self, col: u32, row: u32) -> Qubit {
        col * self.d + row
    }

    fn detector_basis(&self, kind: StabKind) -> DetectorBasis {
        match (kind, self.basis.odd_is_x()) {
            (StabKind::Odd, true) | (StabKind::Even, false) => DetectorBasis::X,
            _ => DetectorBasis::Z,
        }
    }

    /// Emits reset of the given data qubits (odd-basis init for data,
    /// i.e. `|+>` for Z-basis surgery) and Z-reset of ancillas, ending
    /// at `end`.
    fn emit_init(&mut self, end: f64, data: &[Qubit], buffer_even_basis: bool, ancillas: &[Qubit]) {
        let t = end - self.hw.reset_ns;
        let data_op = match (self.basis.odd_is_x(), buffer_even_basis) {
            // Patch data is initialized in the odd-check basis; the
            // merge buffer in the even-check basis.
            (true, false) => Op::ResetX(data.to_vec()),
            (true, true) => Op::ResetZ(data.to_vec()),
            (false, false) => Op::ResetZ(data.to_vec()),
            (false, true) => Op::ResetX(data.to_vec()),
        };
        self.sched.push(t, self.hw.reset_ns, data_op);
        if !ancillas.is_empty() {
            self.sched
                .push(t, self.hw.reset_ns, Op::ResetZ(ancillas.to_vec()));
        }
    }

    /// Emits one syndrome-generation round starting at `t0` over the
    /// given ancillas. Returns the end time.
    ///
    /// `first_of_patch` controls first-round detector rules;
    /// `seam_obs` collects first-measurement records of new merge-type
    /// checks (merged phase only); `intra_gap_ns` spreads Active-intra
    /// slack across the six internal layer boundaries; `stretch_ns`
    /// lengthens the round before its readout (lagging-patch cycles).
    #[allow(clippy::too_many_arguments)]
    fn round(
        &mut self,
        t0: f64,
        ancillas: &[Ancilla],
        anc_index: &HashMap<(u32, u32), Qubit>,
        first_of_patch: bool,
        seam_obs: Option<&mut Vec<MeasRef>>,
        intra_gap_ns: f64,
        stretch_ns: f64,
    ) -> f64 {
        let hw = self.hw.clone();
        let g = intra_gap_ns;
        let x_phys: Vec<Qubit> = ancillas
            .iter()
            .filter(|a| (a.kind == StabKind::Odd) == self.basis.odd_is_x())
            .map(|a| anc_index[&(a.a, a.b)])
            .collect();
        let mut t = t0;
        // Hadamard layer on physically-X ancillas.
        if !x_phys.is_empty() {
            self.sched.push(t, hw.gate_1q_ns, Op::h(x_phys.clone()));
        }
        t += hw.gate_1q_ns + g;
        // Four CNOT layers.
        for layer in 0..4 {
            let mut pairs: Vec<(Qubit, Qubit)> = Vec::new();
            for anc in ancillas {
                let order = match anc.kind {
                    StabKind::Odd => ODD_ORDER,
                    StabKind::Even => EVEN_ORDER,
                };
                let Some((ci, rj)) = anc.neighbors[order[layer]] else {
                    continue;
                };
                let dq = self.data_qubit(ci, rj);
                let aq = anc_index[&(anc.a, anc.b)];
                let anc_is_x = (anc.kind == StabKind::Odd) == self.basis.odd_is_x();
                if anc_is_x {
                    pairs.push((aq, dq)); // ancilla controls
                } else {
                    pairs.push((dq, aq)); // data controls
                }
            }
            if !pairs.is_empty() {
                self.sched.push(t, hw.gate_2q_ns, Op::cx(pairs));
            }
            t += hw.gate_2q_ns + g;
        }
        // Second Hadamard layer.
        if !x_phys.is_empty() {
            self.sched.push(t, hw.gate_1q_ns, Op::h(x_phys));
        }
        t += hw.gate_1q_ns + g + stretch_ns;
        // Measure-and-reset all ancillas; emit detectors.
        let meas_qubits: Vec<Qubit> = ancillas.iter().map(|a| anc_index[&(a.a, a.b)]).collect();
        self.sched.push(
            t,
            hw.readout_ns + hw.reset_ns,
            Op::measure_reset(meas_qubits, 0.0),
        );
        let first_rec = self.records;
        self.records += ancillas.len() as u32;
        t += hw.readout_ns + hw.reset_ns;
        let mut seam_obs = seam_obs;
        for (k, anc) in ancillas.iter().enumerate() {
            let rec = MeasRef(first_rec + k as u32);
            let key = (anc.a, anc.b);
            let coords = [
                2.0 * anc.a as f64,
                2.0 * anc.b as f64,
                self.round_tag as f64,
            ];
            match self.last_meas.get(&key) {
                Some(prev) => {
                    self.sched.push(
                        t,
                        0.0,
                        Op::Detector {
                            records: vec![*prev, rec],
                            basis: self.detector_basis(anc.kind),
                            coords,
                        },
                    );
                }
                None => {
                    if first_of_patch && anc.kind == StabKind::Odd {
                        // Initialization basis makes odd checks
                        // deterministic in their first round.
                        self.sched.push(
                            t,
                            0.0,
                            Op::Detector {
                                records: vec![rec],
                                basis: self.detector_basis(anc.kind),
                                coords,
                            },
                        );
                    } else if let Some(obs) = seam_obs.as_deref_mut() {
                        if anc.kind == StabKind::Odd {
                            // New merge-type check: random individually,
                            // but the product over the seam is the
                            // logical surgery measurement.
                            obs.push(rec);
                        }
                    }
                }
            }
            self.last_meas.insert(key, rec);
        }
        self.round_tag += 1;
        t
    }

    /// Emits the destructive data readout in the odd-check basis plus
    /// the final odd-check detectors, starting at `t0`.
    fn final_readout(&mut self, t0: f64, region: &Lattice, anc_present: &[Ancilla]) -> f64 {
        let data = region.data_coords();
        let qubits: Vec<Qubit> = data.iter().map(|&(i, j)| self.data_qubit(i, j)).collect();
        let op = if self.basis.odd_is_x() {
            Op::measure_x(qubits.clone(), 0.0)
        } else {
            Op::measure_z(qubits.clone(), 0.0)
        };
        self.sched.push(t0, self.hw.readout_ns, op);
        let first_rec = self.records;
        self.records += qubits.len() as u32;
        let rec_of: HashMap<(u32, u32), MeasRef> = data
            .iter()
            .enumerate()
            .map(|(k, &c)| (c, MeasRef(first_rec + k as u32)))
            .collect();
        let t_end = t0 + self.hw.readout_ns;
        for anc in anc_present.iter().filter(|a| a.kind == StabKind::Odd) {
            let mut records: Vec<MeasRef> = anc.support().map(|c| rec_of[&c]).collect();
            records.push(self.last_meas[&(anc.a, anc.b)]);
            self.sched.push(
                t_end,
                0.0,
                Op::Detector {
                    records,
                    basis: self.detector_basis(StabKind::Odd),
                    coords: [
                        2.0 * anc.a as f64,
                        2.0 * anc.b as f64,
                        self.round_tag as f64,
                    ],
                },
            );
        }
        // Logical observables: vertical odd-basis strings on the outer
        // edge columns — both edges for a merged region (P and P'),
        // only one for a single patch.
        let merged_region = region.col_hi - region.col_lo + 1 > self.d;
        let mut columns = vec![(OBS_P, region.col_lo)];
        if merged_region {
            columns.push((OBS_P_PRIME, region.col_hi));
        }
        for (obs, col) in columns {
            let records: Vec<MeasRef> = (0..self.d).map(|j| rec_of[&(col, j)]).collect();
            self.sched.push(
                t_end,
                0.0,
                Op::ObservableInclude {
                    observable: obs,
                    records,
                },
            );
        }
        t_end
    }
}

/// Builds the Fig. 13 Lattice Surgery experiment as a timed schedule:
///
/// 1. both distance-`d` patches are initialized in the surgery basis
///    and run `pre_rounds` syndrome rounds, with patch `P`'s
///    synchronization slack absorbed per `cfg.plan` (pre-round idles,
///    intra-round idles, extra rounds and/or a final idle);
/// 2. the buffer column is initialized and the merged `d x (2d+1)`
///    patch runs `merged_rounds` rounds — the first merged round's new
///    seam checks form the [`OBS_MERGED`] logical measurement;
/// 3. all data is read out destructively, closing the [`OBS_P`] and
///    [`OBS_P_PRIME`] observables.
///
/// The returned schedule is noiseless; feed it through a
/// [`CircuitNoiseModel`](ftqc_noise::CircuitNoiseModel) to obtain the
/// sampled circuit.
///
/// # Panics
///
/// Panics on inconsistent configurations (even distance, zero rounds,
/// or a plan whose idle vector does not match `pre_rounds` plus its
/// extra rounds).
pub fn lattice_surgery_schedule(cfg: &LatticeSurgeryConfig) -> Schedule {
    let d = cfg.distance;
    assert!(d % 2 == 1, "code distance must be odd");
    assert!(
        cfg.pre_rounds > 0 && cfg.merged_rounds > 0,
        "rounds must be positive"
    );
    let plan = &cfg.plan;
    let rounds_p = cfg.pre_rounds + plan.extra_rounds;
    assert_eq!(
        plan.pre_round_idle_ns.len(),
        rounds_p as usize,
        "plan idle vector must cover pre-merge rounds plus extras"
    );

    let patch_p = Lattice::patch(d, 0);
    let patch_q = Lattice::patch(d, d + 1);
    let merged = Lattice::merged(d);

    // Qubit indexing: data first (column-major over the merged width),
    // then the union of all ancilla coordinates.
    let num_data = (2 * d + 1) * d;
    let mut anc_index: HashMap<(u32, u32), Qubit> = HashMap::new();
    let mut next = num_data;
    for anc in patch_p
        .ancillas()
        .iter()
        .chain(patch_q.ancillas().iter())
        .chain(merged.ancillas().iter())
    {
        anc_index.entry((anc.a, anc.b)).or_insert_with(|| {
            let q = next;
            next += 1;
            q
        });
    }

    let hw = cfg.hardware.clone();
    let t_round = hw.cycle_time_ns();
    let intra_total = plan.intra_round_idle_ns;
    let intra_gap = intra_total / 6.0;

    // Span of each patch's pre-merge phase.
    let span_p: f64 = hw.reset_ns
        + plan.pre_round_idle_ns.iter().sum::<f64>()
        + rounds_p as f64 * t_round
        + intra_total
        + plan.final_idle_ns;
    let span_q: f64 =
        hw.reset_ns + cfg.pre_rounds as f64 * (t_round + cfg.lagging_round_stretch_ns);
    let merge_at = span_p.max(span_q);

    let mut em = Emitter {
        sched: Schedule::new(next),
        hw: hw.clone(),
        basis: cfg.basis,
        d,
        records: 0,
        last_meas: HashMap::new(),
        round_tag: 0,
    };

    // --- Patch P (leading; plan applied), anchored to end at merge_at.
    let p_anc = patch_p.ancillas();
    let p_data: Vec<Qubit> = patch_p
        .data_coords()
        .iter()
        .map(|&(i, j)| em.data_qubit(i, j))
        .collect();
    let p_anc_q: Vec<Qubit> = p_anc.iter().map(|a| anc_index[&(a.a, a.b)]).collect();
    let mut t = merge_at - span_p + hw.reset_ns;
    em.emit_init(t, &p_data, false, &p_anc_q);
    for r in 0..rounds_p {
        t += plan.pre_round_idle_ns[r as usize];
        let is_last = r + 1 == rounds_p;
        let gap = if is_last { intra_gap } else { 0.0 };
        t = em.round(t, &p_anc, &anc_index, r == 0, None, gap, 0.0);
    }
    debug_assert!((t + plan.final_idle_ns - merge_at).abs() < 1e-6);

    // --- Patch P' (lagging), back-to-back rounds ending at merge_at.
    em.round_tag = 0;
    let q_anc = patch_q.ancillas();
    let q_data: Vec<Qubit> = patch_q
        .data_coords()
        .iter()
        .map(|&(i, j)| em.data_qubit(i, j))
        .collect();
    let q_anc_q: Vec<Qubit> = q_anc.iter().map(|a| anc_index[&(a.a, a.b)]).collect();
    let mut t = merge_at - span_q + hw.reset_ns;
    em.emit_init(t, &q_data, false, &q_anc_q);
    for r in 0..cfg.pre_rounds {
        t = em.round(
            t,
            &q_anc,
            &anc_index,
            r == 0,
            None,
            0.0,
            cfg.lagging_round_stretch_ns,
        );
    }
    debug_assert!((t - merge_at).abs() < 1e-6);

    // --- Merge: initialize the buffer column and the new seam
    // ancillas, then run merged rounds.
    em.round_tag = cfg.pre_rounds.max(rounds_p);
    let m_anc = merged.ancillas();
    let buffer_data: Vec<Qubit> = (0..d).map(|j| em.data_qubit(d, j)).collect();
    let new_anc_q: Vec<Qubit> = m_anc
        .iter()
        .filter(|a| !em.last_meas.contains_key(&(a.a, a.b)))
        .map(|a| anc_index[&(a.a, a.b)])
        .collect();
    em.emit_init(merge_at, &buffer_data, true, &new_anc_q);
    let mut t = merge_at;
    let mut seam_records: Vec<MeasRef> = Vec::new();
    for r in 0..cfg.merged_rounds {
        let seam = if r == 0 {
            Some(&mut seam_records)
        } else {
            None
        };
        t = em.round(t, &m_anc, &anc_index, false, seam, 0.0, 0.0);
    }
    em.sched.push(
        t,
        0.0,
        Op::ObservableInclude {
            observable: OBS_MERGED,
            records: seam_records,
        },
    );

    // --- Destructive readout + edge-column observables.
    em.final_readout(t, &merged, &m_anc);
    em.sched
}

/// Builds a single-patch memory experiment: initialize in the
/// odd-check basis, run `rounds` syndrome rounds (with optional idle
/// insertion) and read out destructively; observable 0 is the vertical
/// logical string on column 0.
///
/// # Panics
///
/// Panics on inconsistent configurations (see [`MemoryConfig`]).
pub fn memory_schedule(cfg: &MemoryConfig) -> Schedule {
    let d = cfg.distance;
    assert!(d % 2 == 1, "code distance must be odd");
    assert!(cfg.rounds > 0, "rounds must be positive");
    let idles = if cfg.pre_round_idle_ns.is_empty() {
        vec![0.0; cfg.rounds as usize]
    } else {
        assert_eq!(
            cfg.pre_round_idle_ns.len(),
            cfg.rounds as usize,
            "idle vector must have one entry per round"
        );
        cfg.pre_round_idle_ns.clone()
    };
    let patch = Lattice::patch(d, 0);
    let anc = patch.ancillas();
    let num_data = d * d;
    let mut anc_index: HashMap<(u32, u32), Qubit> = HashMap::new();
    for (k, a) in anc.iter().enumerate() {
        anc_index.insert((a.a, a.b), num_data + k as u32);
    }
    let mut em = Emitter {
        sched: Schedule::new(num_data + anc.len() as u32),
        hw: cfg.hardware.clone(),
        basis: cfg.basis,
        d,
        records: 0,
        last_meas: HashMap::new(),
        round_tag: 0,
    };
    let data: Vec<Qubit> = patch
        .data_coords()
        .iter()
        .map(|&(i, j)| em.data_qubit(i, j))
        .collect();
    let anc_q: Vec<Qubit> = anc.iter().map(|a| anc_index[&(a.a, a.b)]).collect();
    let mut t = cfg.hardware.reset_ns;
    em.emit_init(t, &data, false, &anc_q);
    for r in 0..cfg.rounds {
        t += idles[r as usize];
        t = em.round(t, &anc, &anc_index, r == 0, None, 0.0, 0.0);
    }
    t += cfg.final_idle_ns;
    em.final_readout(t, &patch, &anc);
    em.sched
}

#[cfg(test)]
mod tests {
    use super::*;
    use ftqc_noise::CircuitNoiseModel;
    use ftqc_sim::{verify_deterministic, DetectorErrorModel};
    use ftqc_sync::SyncContext;

    fn plan(spec: PolicySpec, tau: f64, tp: f64, tpp: f64, rounds: u32) -> SyncPlan {
        spec.plan(&SyncContext::new(tau, tp, tpp, rounds).unwrap())
            .unwrap()
    }

    fn hw() -> HardwareConfig {
        HardwareConfig::ibm()
    }

    #[test]
    fn memory_detectors_are_deterministic() {
        for basis in [LsBasis::Z, LsBasis::X] {
            let mut cfg = MemoryConfig::new(3, 4, &hw());
            cfg.basis = basis;
            let c = CircuitNoiseModel::ideal().apply(&cfg.build());
            c.validate().unwrap();
            verify_deterministic(&c, 8).unwrap_or_else(|e| panic!("{basis:?}: {e}"));
        }
    }

    #[test]
    fn memory_counts() {
        let cfg = MemoryConfig::new(3, 4, &hw());
        let c = CircuitNoiseModel::ideal().apply(&cfg.build());
        // 4 rounds x 8 stabilizers + 9 data readouts.
        assert_eq!(c.num_measurements(), 4 * 8 + 9);
        assert_eq!(c.num_observables(), 1);
    }

    #[test]
    fn surgery_detectors_are_deterministic_both_bases() {
        for basis in [LsBasis::Z, LsBasis::X] {
            let mut cfg = LatticeSurgeryConfig::new(3, &hw());
            cfg.basis = basis;
            let c = CircuitNoiseModel::ideal().apply(&cfg.build());
            c.validate().unwrap();
            verify_deterministic(&c, 8).unwrap_or_else(|e| panic!("{basis:?}: {e}"));
        }
    }

    #[test]
    fn surgery_with_plans_stays_deterministic() {
        let t = hw().cycle_time_ns();
        for policy in [
            PolicySpec::Passive,
            PolicySpec::Active,
            PolicySpec::ActiveIntra,
        ] {
            let mut cfg = LatticeSurgeryConfig::new(3, &hw());
            cfg.plan = plan(policy.clone(), 700.0, t, t, 4);
            let c = CircuitNoiseModel::ideal().apply(&cfg.build());
            verify_deterministic(&c, 6).unwrap_or_else(|e| panic!("{policy}: {e}"));
        }
    }

    #[test]
    fn surgery_hybrid_plan_adds_rounds() {
        let mut cfg = LatticeSurgeryConfig::new(3, &hw());
        cfg.plan = plan(PolicySpec::hybrid(400.0), 1000.0, 1000.0, 1325.0, 4);
        cfg.lagging_round_stretch_ns = 325.0;
        let c = CircuitNoiseModel::ideal().apply(&cfg.build());
        c.validate().unwrap();
        verify_deterministic(&c, 6).unwrap();
    }

    #[test]
    fn surgery_observable_count_and_indices() {
        let cfg = LatticeSurgeryConfig::new(3, &hw());
        let c = CircuitNoiseModel::ideal().apply(&cfg.build());
        assert_eq!(c.num_observables(), 3);
    }

    #[test]
    fn idle_slack_produces_idle_channels() {
        let t = hw().cycle_time_ns();
        let mut passive = LatticeSurgeryConfig::new(3, &hw());
        passive.plan = plan(PolicySpec::Passive, 1000.0, t, t, 4);
        let mut synced = LatticeSurgeryConfig::new(3, &hw());
        synced.plan = SyncPlan::noop(PolicySpec::Passive, 4);
        let noisy_passive = CircuitNoiseModel::standard(1e-3, &hw()).apply(&passive.build());
        let noisy_synced = CircuitNoiseModel::standard(1e-3, &hw()).apply(&synced.build());
        assert!(
            noisy_passive.stats().noise_channels > noisy_synced.stats().noise_channels,
            "slack adds idle channels"
        );
    }

    #[test]
    fn graphlike_distance_is_d() {
        // The minimum-weight logical error in the decoding graph has d
        // edges: check via the DEM that no mechanism set smaller than d
        // flips OBS_P without detection. We verify the weaker but
        // sharp structural property that every single mechanism either
        // flips a detector or flips no observable.
        let cfg = LatticeSurgeryConfig::new(3, &hw());
        let c = CircuitNoiseModel::standard(1e-3, &hw()).apply(&cfg.build());
        let (dem, stats) = DetectorErrorModel::from_circuit(&c, true);
        assert_eq!(stats.dropped_hyperedges, 0, "all mechanisms graphlike");
        for m in dem.mechanisms() {
            assert!(
                !(m.detectors.is_empty() && m.observables != 0),
                "undetectable logical flip: {m:?}"
            );
        }
    }

    #[test]
    fn repetitionless_properties_hold_for_d5() {
        let cfg = LatticeSurgeryConfig::new(5, &hw());
        let c = CircuitNoiseModel::ideal().apply(&cfg.build());
        c.validate().unwrap();
        verify_deterministic(&c, 4).unwrap();
    }
}
