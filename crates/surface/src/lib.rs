//! Rotated surface code patches and Lattice Surgery circuit generation.
//!
//! This crate is the workspace's equivalent of the paper's `lattice-sim`
//! stabilizer-circuit generator: it builds *timed* schedules (see
//! [`ftqc_circuit::Schedule`]) for
//!
//! * single-patch memory experiments ([`memory_schedule`]),
//! * the two-patch Lattice Surgery experiment of paper Fig. 13
//!   ([`lattice_surgery_schedule`]): two distance-`d` rotated patches run
//!   `d + 1` rounds, merge through a one-column buffer, run another
//!   `d + 1` merged rounds and are read out destructively, with the
//!   synchronization slack of the leading patch absorbed according to a
//!   [`SyncPlan`](ftqc_sync::SyncPlan), and
//! * the three-qubit repetition code of paper Fig. 1(c)
//!   ([`repetition_code_schedule`]).
//!
//! Detectors and logical observables are emitted along the way; their
//! determinism under zero noise is checked in the test suite with the
//! tableau reference simulator, and the graphlike code distance is
//! verified from the extracted detector error model.
//!
//! # Example
//!
//! ```
//! use ftqc_noise::{CircuitNoiseModel, HardwareConfig};
//! use ftqc_surface::{LatticeSurgeryConfig, LsBasis};
//! use ftqc_sync::{PolicySpec, SyncContext};
//!
//! let hw = HardwareConfig::ibm();
//! let t = hw.cycle_time_ns();
//! let mut cfg = LatticeSurgeryConfig::new(3, &hw);
//! let ctx = SyncContext::new(500.0, t, t, 4).unwrap();
//! cfg.plan = PolicySpec::Active.plan(&ctx).unwrap();
//! let schedule = cfg.build();
//! let circuit = CircuitNoiseModel::standard(1e-3, &hw).apply(&schedule);
//! assert_eq!(circuit.num_observables(), 3); // X_P, X_P', X_P X_P'
//! ```

mod builder;
mod geometry;
mod repetition;

pub use builder::{
    lattice_surgery_schedule, memory_schedule, LatticeSurgeryConfig, LsBasis, MemoryConfig,
    OBS_MERGED, OBS_P, OBS_P_PRIME,
};
pub use geometry::{Ancilla, Lattice, StabKind};
pub use repetition::{repetition_code_schedule, RepetitionConfig};
