//! Determinism and stopping-semantics tests for the adaptive
//! run-until-confident evaluation engine.

use ftqc::experiments::{EvalPipeline, EvalPipelineBuilder};
use ftqc::noise::HardwareConfig;
use ftqc::sim::{StopReason, StopRule};
use ftqc::surface::MemoryConfig;

/// A d = 3 memory pipeline builder at physical error rate `p`.
fn d3_memory(p: f64) -> EvalPipelineBuilder {
    let hw = HardwareConfig::ibm();
    EvalPipeline::memory(MemoryConfig::new(3, 4, &hw))
        .physical_error(p)
        .batch_shots(256)
        .seed(42)
}

#[test]
fn chunk_size_does_not_change_adaptive_results() {
    // Same seed, chunk sizes 1k vs 5k: bit-identical merged estimates,
    // because stopping is decided batch-by-batch in global batch order.
    let rule = StopRule::max_shots(60_000).min_failures(30);
    let small = d3_memory(3e-3)
        .chunk_shots(1_000)
        .build()
        .run_adaptive(&rule);
    let large = d3_memory(3e-3)
        .chunk_shots(5_000)
        .build()
        .run_adaptive(&rule);
    assert_eq!(small.reason, large.reason);
    assert_eq!(small.state, large.state);
    assert_eq!(small.estimates(), large.estimates());
}

#[test]
fn thread_count_does_not_change_adaptive_results() {
    let rule = StopRule::max_shots(60_000).min_failures(30);
    let one = d3_memory(3e-3).threads(1).build().run_adaptive(&rule);
    let eight = d3_memory(3e-3).threads(8).build().run_adaptive(&rule);
    assert_eq!(one.reason, eight.reason);
    assert_eq!(one.state, eight.state);
}

#[test]
fn min_failures_stops_strictly_before_ceiling_on_high_ler_config() {
    // p = 1e-2 is far above threshold for d = 3: failures accumulate
    // within a few hundred shots, so the failure target must fire long
    // before the 200k ceiling.
    let rule = StopRule::max_shots(200_000).min_failures(25);
    let outcome = d3_memory(1e-2).build().run_adaptive(&rule);
    assert_eq!(outcome.reason, StopReason::FailureTarget);
    assert!(
        outcome.shots() < 200_000,
        "adaptive run sampled the whole ceiling ({} shots)",
        outcome.shots()
    );
    assert!(outcome.estimates().iter().all(|e| e.successes() >= 25));
}

#[test]
fn rse_target_stops_with_stated_confidence() {
    let rule = StopRule::max_shots(200_000).max_rse(0.15);
    let pipeline = d3_memory(1e-2).build();
    let outcome = pipeline.run_adaptive(&rule);
    assert_eq!(outcome.reason, StopReason::RseTarget);
    for (o, e) in outcome.estimates().iter().enumerate() {
        assert!(
            e.std_err() / e.rate() <= 0.15,
            "observable {o} stopped at rse {}",
            e.std_err() / e.rate()
        );
    }
}

#[test]
fn ceiling_only_rule_matches_fixed_run_bit_for_bit() {
    let pipeline = d3_memory(3e-3).shots(5_000).build();
    let fixed = pipeline.run();
    let outcome = pipeline.run_adaptive(&StopRule::max_shots(5_000));
    assert_eq!(outcome.reason, StopReason::ShotCeiling);
    assert_eq!(outcome.estimates(), fixed);
}

#[test]
fn progress_states_stay_on_batch_boundaries_even_at_a_misaligned_ceiling() {
    // A ceiling mid-batch (900 with batch_shots 256) truncates the
    // final batch; that partial state must never reach on_progress, so
    // every checkpoint remains resumable under a later, larger
    // ceiling.
    let pipeline = d3_memory(3e-3).chunk_shots(512).build();
    let mut reported = Vec::new();
    let outcome = pipeline.run_adaptive_with(&StopRule::max_shots(900), None, |s| {
        reported.push(s.clone())
    });
    assert_eq!(outcome.shots(), 900);
    assert!(!reported.is_empty());
    assert!(reported.iter().all(|s| s.trials() % 256 == 0));
    // Raising the ceiling from the last checkpoint matches a direct
    // run (the partial tail is re-sampled).
    let resumed = pipeline.run_adaptive_with(
        &StopRule::max_shots(2_048),
        Some(reported.last().unwrap().clone()),
        |_| {},
    );
    let direct = pipeline.run_adaptive(&StopRule::max_shots(2_048));
    assert_eq!(resumed.state, direct.state);
}

#[test]
fn fingerprint_covers_the_decoder_training_seed() {
    use ftqc::decoder::DecoderKind;
    let lut = DecoderKind::Lut {
        train_shots: 1_000,
        capacity_bytes: 3 * 1024,
    };
    let a = d3_memory(1e-3).decoder(lut).decoder_seed(7).build();
    let b = d3_memory(1e-3).decoder(lut).decoder_seed(8).build();
    assert_ne!(a.fingerprint(), b.fingerprint());
}

#[test]
fn resumed_run_matches_uninterrupted_run() {
    let pipeline = d3_memory(3e-3).build();
    let full_rule = StopRule::max_shots(6_000);
    let uninterrupted = pipeline.run_adaptive(&full_rule);
    // Interrupt at 2048 shots (a batch boundary), then resume.
    let partial = pipeline.run_adaptive(&StopRule::max_shots(2_048));
    assert_eq!(partial.shots(), 2_048);
    let resumed = pipeline.run_adaptive_with(&full_rule, Some(partial.state), |_| {});
    assert_eq!(resumed.state, uninterrupted.state);
    assert_eq!(resumed.reason, uninterrupted.reason);
}
