//! Cross-validation: the detector error model must predict the frame
//! sampler's detector statistics, and generated circuits must
//! round-trip through the text format.

use ftqc::circuit::Circuit;
use ftqc::noise::{CircuitNoiseModel, HardwareConfig};
use ftqc::sim::{sample_batch, DetectorErrorModel};
use ftqc::surface::{LatticeSurgeryConfig, MemoryConfig};

/// Exact marginal flip probability of each detector according to the
/// DEM: detectors flip when an odd number of their mechanisms fire,
/// and mechanisms are independent.
fn dem_marginals(circuit: &Circuit, decompose: bool) -> Vec<f64> {
    let (dem, _) = DetectorErrorModel::from_circuit(circuit, decompose);
    let mut p = vec![0.0f64; dem.num_detectors()];
    for m in dem.mechanisms() {
        for &d in &m.detectors {
            let old = p[d as usize];
            p[d as usize] = old * (1.0 - m.probability) + m.probability * (1.0 - old);
        }
    }
    p
}

#[test]
fn dem_predicts_sampler_marginals_on_memory_circuit() {
    let hw = HardwareConfig::google();
    let circuit =
        CircuitNoiseModel::standard(2e-3, &hw).apply(&MemoryConfig::new(3, 4, &hw).build());
    // Use the undecomposed DEM: it is exact (the CSS-decomposed one
    // treats Y components as two independent events).
    let predicted = dem_marginals(&circuit, false);
    let shots = 200_000usize;
    let batch = sample_batch(&circuit, shots, 31);
    for (d, &p) in predicted.iter().enumerate() {
        let observed = batch.count_detector_flips(d) as f64 / shots as f64;
        let sigma = (p * (1.0 - p) / shots as f64).sqrt().max(1e-6);
        assert!(
            (observed - p).abs() < 6.0 * sigma + 1e-3,
            "detector {d}: predicted {p:.5}, observed {observed:.5}"
        );
    }
}

#[test]
fn dem_predicts_sampler_marginals_on_surgery_circuit() {
    let hw = HardwareConfig::ibm();
    let circuit =
        CircuitNoiseModel::standard(1e-3, &hw).apply(&LatticeSurgeryConfig::new(3, &hw).build());
    let predicted = dem_marginals(&circuit, false);
    let shots = 100_000usize;
    let batch = sample_batch(&circuit, shots, 77);
    let mut checked = 0;
    for (d, &p) in predicted.iter().enumerate() {
        let observed = batch.count_detector_flips(d) as f64 / shots as f64;
        let sigma = (p * (1.0 - p) / shots as f64).sqrt().max(1e-6);
        assert!(
            (observed - p).abs() < 6.0 * sigma + 2e-3,
            "detector {d}: predicted {p:.5}, observed {observed:.5}"
        );
        checked += 1;
    }
    assert!(checked > 50, "expected a nontrivial detector count");
}

#[test]
fn decomposed_dem_approximates_exact_marginals() {
    // CSS decomposition splits Y errors into independent X and Z parts;
    // marginals must stay within the Y-correlation error (second
    // order).
    let hw = HardwareConfig::ibm();
    let circuit =
        CircuitNoiseModel::standard(1e-3, &hw).apply(&MemoryConfig::new(3, 4, &hw).build());
    let exact = dem_marginals(&circuit, false);
    let approx = dem_marginals(&circuit, true);
    for (d, (e, a)) in exact.iter().zip(&approx).enumerate() {
        assert!(
            (e - a).abs() < 0.15 * e.max(1e-4),
            "detector {d}: exact {e:.5} vs decomposed {a:.5}"
        );
    }
}

#[test]
fn generated_surgery_circuit_roundtrips_through_text() {
    let hw = HardwareConfig::ibm();
    let circuit =
        CircuitNoiseModel::standard(1e-3, &hw).apply(&LatticeSurgeryConfig::new(3, &hw).build());
    let text = circuit.to_string();
    let back = Circuit::parse(&text).expect("parses");
    assert_eq!(back.to_string(), text);
    assert_eq!(back.num_detectors(), circuit.num_detectors());
    assert_eq!(back.num_measurements(), circuit.num_measurements());
    assert_eq!(back.num_observables(), circuit.num_observables());
}
