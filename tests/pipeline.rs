//! Acceptance tests for the unified `EvalPipeline` / `DecoderKind`
//! layer: every decoder family must beat guessing through the pipeline,
//! and pipeline results must be bit-identical to the pre-refactor
//! hand-rolled chain for a fixed seed.

use ftqc::decoder::{evaluate_ler, DecoderKind, DecodingGraph, LutDecoder, MwpmDecoder, UfDecoder};
use ftqc::experiments::EvalPipeline;
use ftqc::noise::{CircuitNoiseModel, HardwareConfig};
use ftqc::sim::DetectorErrorModel;
use ftqc::surface::MemoryConfig;

fn d3_memory() -> MemoryConfig {
    MemoryConfig::new(3, 4, &HardwareConfig::ibm())
}

#[test]
fn all_four_kinds_decode_d3_memory_below_guessing() {
    // A memory circuit stores one observable; guessing scores 50%.
    // Every decoder family must do far better through the pipeline.
    let pipeline = EvalPipeline::memory(d3_memory())
        .physical_error(1e-3)
        .shots(4_000)
        .batch_shots(512)
        .seed(3)
        .threads(2)
        .build();
    for kind in [
        DecoderKind::UnionFind,
        DecoderKind::Mwpm,
        DecoderKind::lut(),
        DecoderKind::hierarchical(),
    ] {
        let ler = pipeline.run_with(kind);
        assert_eq!(ler.len(), 1);
        assert!(
            ler[0].rate() < 0.1,
            "{kind} decodes far below the 50% guess rate, got {}",
            ler[0]
        );
    }
}

#[test]
fn pipeline_is_bit_identical_to_the_direct_chain() {
    // The pre-refactor chain, spelled out step by step.
    let cfg = d3_memory();
    let circuit = CircuitNoiseModel::standard(1e-3, &cfg.hardware).apply(&cfg.build());
    let (dem, _) = DetectorErrorModel::from_circuit(&circuit, true);
    let graph = DecodingGraph::from_dem(&dem);
    let (shots, batch, seed, threads) = (3_000u64, 512usize, 41u64, 2usize);

    let direct: Vec<(&str, Vec<_>)> = vec![
        (
            "union-find",
            evaluate_ler(
                &circuit,
                &UfDecoder::new(graph.clone()),
                shots,
                batch,
                seed,
                threads,
            ),
        ),
        (
            "mwpm",
            evaluate_ler(
                &circuit,
                &MwpmDecoder::new(graph.clone()),
                shots,
                batch,
                seed,
                threads,
            ),
        ),
        (
            "lut",
            evaluate_ler(
                &circuit,
                &LutDecoder::train(&circuit, 20_000, seed, 3 * 1024),
                shots,
                batch,
                seed,
                threads,
            ),
        ),
    ];

    let pipeline = EvalPipeline::memory(cfg)
        .shots(shots)
        .batch_shots(batch)
        .seed(seed)
        .threads(threads)
        .build();
    for (name, direct_ler) in direct {
        let kind = match name {
            "union-find" => DecoderKind::UnionFind,
            "mwpm" => DecoderKind::Mwpm,
            _ => DecoderKind::lut(),
        };
        let pipeline_ler = pipeline.run_with(kind);
        assert_eq!(direct_ler.len(), pipeline_ler.len());
        for (obs, (d, p)) in direct_ler.iter().zip(&pipeline_ler).enumerate() {
            assert_eq!(
                d.successes(),
                p.successes(),
                "{name}, observable {obs}: direct {d} vs pipeline {p}"
            );
            assert_eq!(d.trials(), p.trials());
        }
    }
}

#[test]
fn pipeline_results_are_thread_count_invariant() {
    let run = |threads: usize| {
        EvalPipeline::memory(d3_memory())
            .shots(2_000)
            .batch_shots(256)
            .seed(42)
            .threads(threads)
            .build()
            .run()
    };
    let one = run(1);
    let four = run(4);
    assert_eq!(one[0].successes(), four[0].successes());
}
