//! Property-based tests over the core invariants.

use ftqc::pauli::{Pauli, PauliString};
use ftqc::sync::{solve_extra_rounds, solve_hybrid, PolicySpec, SlackWindow, SyncContext};
use proptest::prelude::*;

fn arb_pauli() -> impl Strategy<Value = Pauli> {
    prop_oneof![
        Just(Pauli::I),
        Just(Pauli::X),
        Just(Pauli::Y),
        Just(Pauli::Z)
    ]
}

/// Every built-in policy spec, parameterized from the generated values.
fn builtin_specs(eps: f64, floor_frac: f64, q: f64, max: u32) -> Vec<PolicySpec> {
    vec![
        PolicySpec::Passive,
        PolicySpec::Active,
        PolicySpec::ActiveIntra,
        PolicySpec::ExtraRounds,
        PolicySpec::Hybrid {
            epsilon_ns: eps,
            max_extra_rounds: max,
        },
        PolicySpec::DynamicHybrid {
            max_epsilon_ns: eps,
            floor_ns: eps * floor_frac,
            quantile: q,
            max_extra_rounds: max,
            deep_rounds: max + 20,
        },
    ]
}

proptest! {
    #[test]
    fn pauli_product_is_associative(a in arb_pauli(), b in arb_pauli(), c in arb_pauli()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn pauli_self_inverse(a in arb_pauli()) {
        prop_assert_eq!(a * a, Pauli::I);
    }

    #[test]
    fn string_commutation_is_symmetric(
        pairs_a in proptest::collection::vec((0u32..16, arb_pauli()), 0..8),
        pairs_b in proptest::collection::vec((0u32..16, arb_pauli()), 0..8),
    ) {
        let a = PauliString::from_pairs(16, pairs_a.iter().map(|&(q, p)| (q as usize, p)));
        let b = PauliString::from_pairs(16, pairs_b.iter().map(|&(q, p)| (q as usize, p)));
        prop_assert_eq!(a.commutes(&b), b.commutes(&a));
    }

    #[test]
    fn string_product_weight_bounded(
        pairs_a in proptest::collection::vec((0u32..16, arb_pauli()), 0..8),
        pairs_b in proptest::collection::vec((0u32..16, arb_pauli()), 0..8),
    ) {
        let a = PauliString::from_pairs(16, pairs_a.iter().map(|&(q, p)| (q as usize, p)));
        let b = PauliString::from_pairs(16, pairs_b.iter().map(|&(q, p)| (q as usize, p)));
        let prod = a.product(&b);
        prop_assert!(prod.weight() <= a.weight() + b.weight());
        // Multiplying back recovers a.
        prop_assert_eq!(prod.product(&b), a);
    }

    #[test]
    fn extra_rounds_solution_satisfies_eq1(
        tp in 500.0f64..2000.0,
        dt in 25.0f64..800.0,
        tau in 0.0f64..2000.0,
    ) {
        let tpp = tp + dt;
        if let Ok(m) = solve_extra_rounds(tp, tpp, tau, 200) {
            let elapsed = m as f64 * tp + tau;
            let ratio = elapsed / tpp;
            prop_assert!((ratio - ratio.round()).abs() * tpp < 1e-5,
                "m={m} does not satisfy Eq. (1)");
        }
    }

    #[test]
    fn hybrid_residual_always_below_tolerance(
        tp in 500.0f64..2000.0,
        dt in 25.0f64..800.0,
        tau in 0.0f64..2000.0,
        eps in 50.0f64..500.0,
    ) {
        let tpp = tp + dt;
        if let Ok(sol) = solve_hybrid(tp, tpp, tau, eps, 12) {
            prop_assert!(sol.residual_ns < eps);
            prop_assert!(sol.residual_ns >= 0.0);
            prop_assert!(sol.extra_rounds >= 1);
            // The residual is exactly the misalignment after z rounds.
            let elapsed = sol.extra_rounds as f64 * tp + tau;
            let expect = (elapsed / tpp).ceil() * tpp - elapsed;
            prop_assert!((sol.residual_ns - expect).abs() < 1e-6);
        }
    }

    /// `PolicySpec` strings are a faithful wire format: Display then
    /// FromStr recovers every built-in spec exactly, whatever its
    /// parameters.
    #[test]
    fn policy_specs_round_trip_through_strings(
        eps in 1.0f64..2000.0,
        floor_frac in 0.01f64..1.0,
        q in 0.0f64..1.0,
        max in 1u32..30,
    ) {
        for spec in builtin_specs(eps, floor_frac, q, max) {
            let text = spec.to_string();
            let parsed: PolicySpec = text.parse().unwrap_or_else(|e| {
                panic!("`{text}` failed to parse back: {e}")
            });
            prop_assert_eq!(&parsed, &spec);
            // A second round trip is the identity on the string, too.
            prop_assert_eq!(parsed.to_string(), text);
        }
    }

    /// Every built-in strategy conserves slack: inserted idle plus the
    /// slack eliminated through extra rounds accounts for the full
    /// wrapped slack. For extra-round plans the eliminated share is
    /// pinned down by the alignment condition of Eq. (1)/(2):
    /// `m*T_P + tau_w + idle` lands on a lagging-cycle boundary.
    #[test]
    fn every_builtin_strategy_conserves_slack(
        tau in 0.0f64..2500.0,
        tp in 500.0f64..2000.0,
        dt in 25.0f64..800.0,
        rounds in 1u32..20,
        window in proptest::collection::vec(0.0f64..2000.0, 0..12),
        eps in 50.0f64..500.0,
        floor_frac in 0.01f64..1.0,
        q in 0.0f64..1.0,
    ) {
        let tpp = tp + dt;
        let mut observed = SlackWindow::default();
        for s in &window {
            observed.record(*s);
        }
        let ctx = SyncContext::new(tau, tp, tpp, rounds)
            .unwrap()
            .with_observed(observed);
        let tau_w = ctx.wrapped_tau_ns();
        for spec in builtin_specs(eps, floor_frac, q, 12) {
            let Ok(plan) = spec.plan(&ctx) else {
                continue; // infeasible pair for this strategy
            };
            let idle = plan.total_idle_ns();
            prop_assert!(idle >= -1e-9, "{spec}: negative idle {idle}");
            let round_compensation_ns = if plan.extra_rounds > 0 {
                // The plan may only claim slack was eliminated by
                // rounds if the Eq. (1)/(2) alignment actually holds.
                let elapsed = plan.extra_rounds as f64 * tp + tau_w + idle;
                let rem = elapsed % tpp;
                prop_assert!(
                    rem.min(tpp - rem) < 5e-6,
                    "{spec}: m={} does not align (remainder {rem})",
                    plan.extra_rounds
                );
                tau_w - idle
            } else {
                0.0
            };
            prop_assert!(
                (idle + round_compensation_ns - tau_w).abs() < 1e-6,
                "{spec}: idle {idle} + rounds {round_compensation_ns} != tau {tau_w}"
            );
        }
    }

    #[test]
    fn plans_conserve_the_slack(
        tau in 0.0f64..1800.0,
        rounds in 1u32..20,
    ) {
        let t = 1900.0;
        let ctx = SyncContext::new(tau, t, t, rounds).unwrap();
        for policy in [PolicySpec::Passive, PolicySpec::Active, PolicySpec::ActiveIntra] {
            let plan = policy.plan(&ctx).unwrap();
            // Equal cycle times: every idle-based policy inserts exactly
            // tau (mod wrap) of idle in total.
            let expect = tau % t;
            prop_assert!((plan.total_idle_ns() - expect).abs() < 1e-6,
                "{policy}: {} vs {expect}", plan.total_idle_ns());
            prop_assert_eq!(plan.extra_rounds, 0);
        }
    }

    #[test]
    fn hybrid_plan_idle_bounded_by_epsilon(
        tau in 0.0f64..1300.0,
        eps in 100.0f64..500.0,
    ) {
        let ctx = SyncContext::new(tau, 1000.0, 1325.0, 8).unwrap();
        let spec = PolicySpec::Hybrid { epsilon_ns: eps, max_extra_rounds: 12 };
        if let Ok(plan) = spec.plan(&ctx) {
            prop_assert!(plan.total_idle_ns() < eps);
        }
    }

    #[test]
    fn no_policy_idles_more_than_passive(
        tau in 0.0f64..2500.0,
        tp in 500.0f64..2000.0,
        dt in 25.0f64..800.0,
        rounds in 1u32..20,
    ) {
        let tpp = tp + dt;
        let ctx = SyncContext::new(tau, tp, tpp, rounds).unwrap();
        let passive = PolicySpec::Passive.plan(&ctx).unwrap();
        let policies = [
            PolicySpec::Active,
            PolicySpec::ActiveIntra,
            PolicySpec::ExtraRounds,
            PolicySpec::Hybrid { epsilon_ns: 400.0, max_extra_rounds: 12 },
            PolicySpec::dynamic_hybrid(),
        ];
        for policy in policies {
            let Ok(plan) = policy.plan(&ctx) else {
                continue; // infeasible pair for this policy
            };
            // Dead time right before the merge is monotonically no
            // worse than Passive's for every policy...
            prop_assert!(
                plan.final_idle_ns <= passive.final_idle_ns + 1e-9,
                "{policy}: final idle {} > Passive {}",
                plan.final_idle_ns,
                passive.final_idle_ns
            );
            // ...and so is the total inserted idle, except that a
            // Hybrid plan trades against its epsilon bound instead
            // (its residual can exceed a *small* tau but never eps).
            let bound = match &plan.policy {
                PolicySpec::Hybrid { epsilon_ns, .. } => {
                    passive.total_idle_ns().max(*epsilon_ns)
                }
                PolicySpec::DynamicHybrid { max_epsilon_ns, .. } => {
                    passive.total_idle_ns().max(*max_epsilon_ns)
                }
                _ => passive.total_idle_ns(),
            };
            prop_assert!(
                plan.total_idle_ns() <= bound + 1e-9,
                "{policy}: total idle {} > bound {bound}",
                plan.total_idle_ns()
            );
        }
    }

    #[test]
    fn extra_rounds_plan_is_idle_free_and_aligns(
        tau in 0.0f64..2000.0,
        tp in 500.0f64..2000.0,
        dt in 25.0f64..800.0,
        rounds in 1u32..20,
    ) {
        let tpp = tp + dt;
        let ctx = SyncContext::new(tau, tp, tpp, rounds).unwrap();
        if let Ok(plan) = PolicySpec::ExtraRounds.plan(&ctx) {
            prop_assert!(plan.policy == PolicySpec::ExtraRounds);
            prop_assert_eq!(plan.total_idle_ns(), 0.0);
            prop_assert_eq!(
                plan.pre_round_idle_ns.len(),
                (rounds + plan.extra_rounds) as usize
            );
            // The chosen round count satisfies Eq. (1) for the wrapped
            // slack (the context reduces tau modulo the lagging cycle).
            let elapsed = plan.extra_rounds as f64 * tp + tau % tpp;
            let ratio = elapsed / tpp;
            prop_assert!((ratio - ratio.round()).abs() * tpp < 1e-5);
        }
    }
}
