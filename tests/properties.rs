//! Property-based tests over the core invariants.

use ftqc::pauli::{Pauli, PauliString};
use ftqc::sync::{plan_sync, solve_extra_rounds, solve_hybrid, SyncPolicy};
use proptest::prelude::*;

fn arb_pauli() -> impl Strategy<Value = Pauli> {
    prop_oneof![
        Just(Pauli::I),
        Just(Pauli::X),
        Just(Pauli::Y),
        Just(Pauli::Z)
    ]
}

proptest! {
    #[test]
    fn pauli_product_is_associative(a in arb_pauli(), b in arb_pauli(), c in arb_pauli()) {
        prop_assert_eq!((a * b) * c, a * (b * c));
    }

    #[test]
    fn pauli_self_inverse(a in arb_pauli()) {
        prop_assert_eq!(a * a, Pauli::I);
    }

    #[test]
    fn string_commutation_is_symmetric(
        pairs_a in proptest::collection::vec((0u32..16, arb_pauli()), 0..8),
        pairs_b in proptest::collection::vec((0u32..16, arb_pauli()), 0..8),
    ) {
        let a = PauliString::from_pairs(16, pairs_a.iter().map(|&(q, p)| (q as usize, p)));
        let b = PauliString::from_pairs(16, pairs_b.iter().map(|&(q, p)| (q as usize, p)));
        prop_assert_eq!(a.commutes(&b), b.commutes(&a));
    }

    #[test]
    fn string_product_weight_bounded(
        pairs_a in proptest::collection::vec((0u32..16, arb_pauli()), 0..8),
        pairs_b in proptest::collection::vec((0u32..16, arb_pauli()), 0..8),
    ) {
        let a = PauliString::from_pairs(16, pairs_a.iter().map(|&(q, p)| (q as usize, p)));
        let b = PauliString::from_pairs(16, pairs_b.iter().map(|&(q, p)| (q as usize, p)));
        let prod = a.product(&b);
        prop_assert!(prod.weight() <= a.weight() + b.weight());
        // Multiplying back recovers a.
        prop_assert_eq!(prod.product(&b), a);
    }

    #[test]
    fn extra_rounds_solution_satisfies_eq1(
        tp in 500.0f64..2000.0,
        dt in 25.0f64..800.0,
        tau in 0.0f64..2000.0,
    ) {
        let tpp = tp + dt;
        if let Ok(m) = solve_extra_rounds(tp, tpp, tau, 200) {
            let elapsed = m as f64 * tp + tau;
            let ratio = elapsed / tpp;
            prop_assert!((ratio - ratio.round()).abs() * tpp < 1e-5,
                "m={m} does not satisfy Eq. (1)");
        }
    }

    #[test]
    fn hybrid_residual_always_below_tolerance(
        tp in 500.0f64..2000.0,
        dt in 25.0f64..800.0,
        tau in 0.0f64..2000.0,
        eps in 50.0f64..500.0,
    ) {
        let tpp = tp + dt;
        if let Ok(sol) = solve_hybrid(tp, tpp, tau, eps, 12) {
            prop_assert!(sol.residual_ns < eps);
            prop_assert!(sol.residual_ns >= 0.0);
            prop_assert!(sol.extra_rounds >= 1);
            // The residual is exactly the misalignment after z rounds.
            let elapsed = sol.extra_rounds as f64 * tp + tau;
            let expect = (elapsed / tpp).ceil() * tpp - elapsed;
            prop_assert!((sol.residual_ns - expect).abs() < 1e-6);
        }
    }

    #[test]
    fn plans_conserve_the_slack(
        tau in 0.0f64..1800.0,
        rounds in 1u32..20,
    ) {
        let t = 1900.0;
        for policy in [SyncPolicy::Passive, SyncPolicy::Active, SyncPolicy::ActiveIntra] {
            let plan = plan_sync(policy, tau, t, t, rounds).unwrap();
            // Equal cycle times: every idle-based policy inserts exactly
            // tau (mod wrap) of idle in total.
            let expect = tau % t;
            prop_assert!((plan.total_idle_ns() - expect).abs() < 1e-6,
                "{policy}: {} vs {expect}", plan.total_idle_ns());
            prop_assert_eq!(plan.extra_rounds, 0);
        }
    }

    #[test]
    fn hybrid_plan_idle_bounded_by_epsilon(
        tau in 0.0f64..1300.0,
        eps in 100.0f64..500.0,
    ) {
        if let Ok(plan) = plan_sync(
            SyncPolicy::Hybrid { epsilon_ns: eps, max_extra_rounds: 12 },
            tau, 1000.0, 1325.0, 8,
        ) {
            if plan.policy != SyncPolicy::Active {
                prop_assert!(plan.total_idle_ns() < eps);
            }
        }
    }

    #[test]
    fn no_policy_idles_more_than_passive(
        tau in 0.0f64..2500.0,
        tp in 500.0f64..2000.0,
        dt in 25.0f64..800.0,
        rounds in 1u32..20,
    ) {
        let tpp = tp + dt;
        let passive = plan_sync(SyncPolicy::Passive, tau, tp, tpp, rounds).unwrap();
        let policies = [
            SyncPolicy::Active,
            SyncPolicy::ActiveIntra,
            SyncPolicy::ExtraRounds,
            SyncPolicy::Hybrid { epsilon_ns: 400.0, max_extra_rounds: 12 },
        ];
        for policy in policies {
            let Ok(plan) = plan_sync(policy, tau, tp, tpp, rounds) else {
                continue; // infeasible pair for this policy
            };
            // Dead time right before the merge is monotonically no
            // worse than Passive's for every policy...
            prop_assert!(
                plan.final_idle_ns <= passive.final_idle_ns + 1e-9,
                "{policy}: final idle {} > Passive {}",
                plan.final_idle_ns,
                passive.final_idle_ns
            );
            // ...and so is the total inserted idle, except that a
            // Hybrid plan trades against its epsilon bound instead
            // (its residual can exceed a *small* tau but never eps).
            let bound = match plan.policy {
                SyncPolicy::Hybrid { epsilon_ns, .. } => {
                    passive.total_idle_ns().max(epsilon_ns)
                }
                _ => passive.total_idle_ns(),
            };
            prop_assert!(
                plan.total_idle_ns() <= bound + 1e-9,
                "{policy}: total idle {} > bound {bound}",
                plan.total_idle_ns()
            );
        }
    }

    #[test]
    fn extra_rounds_plan_is_idle_free_and_aligns(
        tau in 0.0f64..2000.0,
        tp in 500.0f64..2000.0,
        dt in 25.0f64..800.0,
        rounds in 1u32..20,
    ) {
        let tpp = tp + dt;
        if let Ok(plan) = plan_sync(SyncPolicy::ExtraRounds, tau, tp, tpp, rounds) {
            prop_assert!(plan.policy == SyncPolicy::ExtraRounds);
            prop_assert_eq!(plan.total_idle_ns(), 0.0);
            prop_assert_eq!(
                plan.pre_round_idle_ns.len(),
                (rounds + plan.extra_rounds) as usize
            );
            // The chosen round count satisfies Eq. (1) for the wrapped
            // slack (plan_sync reduces tau modulo the lagging cycle).
            let elapsed = plan.extra_rounds as f64 * tp + tau % tpp;
            let ratio = elapsed / tpp;
            prop_assert!((ratio - ratio.round()).abs() * tpp < 1e-5);
        }
    }
}
