//! Integration tests for the program-level runtime: the paper's
//! qualitative policy ordering must hold for every workload (including
//! the drift-adaptive `dynamic-hybrid` extension), Hybrid must respect
//! its slack bound, and runs must be deterministic.

use ftqc::estimator::{workloads, LogicalEstimate};
use ftqc::noise::HardwareConfig;
use ftqc::runtime::{execute, ProgramReport, ProgramSchedule, RuntimeConfig};
use ftqc::sync::PolicySpec;

const SEED: u64 = 2025;
const EPSILON_NS: f64 = 400.0;
const MERGE_CAP: u64 = 400;

fn run_policy(schedule: &ProgramSchedule, policy: PolicySpec) -> ProgramReport {
    let hw = HardwareConfig::ibm();
    execute(schedule, &RuntimeConfig::new(&hw, policy, SEED))
}

/// The acceptance criterion: for every workload, Passive overhead >=
/// Active >= {Extra-Rounds, Hybrid}, DynamicHybrid never exceeds the
/// fixed Hybrid at the same tolerance cap, and Hybrid stays within its
/// configured slack bound.
#[test]
fn policy_ordering_reproduces_the_paper_for_every_workload() {
    for workload in workloads::catalog() {
        let estimate = LogicalEstimate::for_workload(&workload, 1e-3, 1e-2);
        let schedule = ProgramSchedule::compile(&workload, &estimate, MERGE_CAP, SEED);
        let passive = run_policy(&schedule, PolicySpec::Passive);
        let active = run_policy(&schedule, PolicySpec::Active);
        let extra = run_policy(&schedule, PolicySpec::ExtraRounds);
        let hybrid = run_policy(&schedule, PolicySpec::hybrid(EPSILON_NS));
        let dynamic = run_policy(&schedule, PolicySpec::dynamic_hybrid());
        let name = &workload.name;
        assert!(passive.overhead_percent() > 0.0, "{name}: no slack at all");
        assert!(
            passive.overhead_percent() >= active.overhead_percent(),
            "{name}: Passive {} < Active {}",
            passive.overhead_percent(),
            active.overhead_percent()
        );
        assert!(
            active.overhead_percent() >= extra.overhead_percent(),
            "{name}: Active {} < Extra-Rounds {}",
            active.overhead_percent(),
            extra.overhead_percent()
        );
        assert!(
            active.overhead_percent() >= hybrid.overhead_percent(),
            "{name}: Active {} < Hybrid {}",
            active.overhead_percent(),
            hybrid.overhead_percent()
        );
        // The adaptive tolerance tightens per merge, so DynamicHybrid
        // attributes no more idle than the fixed Hybrid at the same cap.
        assert!(
            hybrid.overhead_percent() >= dynamic.overhead_percent(),
            "{name}: Hybrid {} < DynamicHybrid {}",
            hybrid.overhead_percent(),
            dynamic.overhead_percent()
        );
        // Extra-round policies actually traded idle for rounds.
        assert!(extra.extra_rounds > 0, "{name}: Extra-Rounds ran none");
        assert!(hybrid.extra_rounds > 0, "{name}: Hybrid ran none");
        // Hybrid within its configured slack bound, per applied plan;
        // DynamicHybrid within its cap (its per-merge tolerance never
        // exceeds it).
        assert!(hybrid.hybrid_applied > 0, "{name}: Hybrid never applied");
        assert!(dynamic.hybrid_applied > 0, "{name}: Dynamic never applied");
        assert!(
            hybrid.max_hybrid_residual_ns < EPSILON_NS,
            "{name}: residual {} ns >= epsilon {EPSILON_NS} ns",
            hybrid.max_hybrid_residual_ns
        );
        assert!(
            dynamic.max_hybrid_residual_ns < EPSILON_NS,
            "{name}: dynamic residual {} ns >= cap {EPSILON_NS} ns",
            dynamic.max_hybrid_residual_ns
        );
    }
}

#[test]
fn runtime_is_deterministic_for_a_fixed_seed() {
    let workload = workloads::qft(80);
    let estimate = LogicalEstimate::for_workload(&workload, 1e-3, 1e-2);
    let schedule = ProgramSchedule::compile(&workload, &estimate, MERGE_CAP, SEED);
    for policy in [
        PolicySpec::Passive,
        PolicySpec::hybrid(EPSILON_NS),
        PolicySpec::dynamic_hybrid(),
    ] {
        let a = run_policy(&schedule, policy.clone());
        let b = run_policy(&schedule, policy.clone());
        assert_eq!(a, b, "{policy} not reproducible");
    }
    // A different seed perturbs the calibration draws and therefore
    // the measured overheads.
    let hw = HardwareConfig::ibm();
    let other = execute(
        &schedule,
        &RuntimeConfig::new(&hw, PolicySpec::Passive, SEED + 1),
    );
    assert_ne!(other, run_policy(&schedule, PolicySpec::Passive));
}

#[test]
fn passive_and_active_agree_on_wall_clock() {
    // The two pure idling policies place the same total idle
    // differently, so program runtime and attributed idle coincide.
    let workload = workloads::ising(98);
    let estimate = LogicalEstimate::for_workload(&workload, 1e-3, 1e-2);
    let schedule = ProgramSchedule::compile(&workload, &estimate, MERGE_CAP, SEED);
    let passive = run_policy(&schedule, PolicySpec::Passive);
    let active = run_policy(&schedule, PolicySpec::Active);
    assert_eq!(passive.total_ns, active.total_ns);
    assert_eq!(passive.sync_idle_ns, active.sync_idle_ns);
    assert_eq!(passive.alignment_idle_ns, 0);
    assert_eq!(active.alignment_idle_ns, 0);
}

#[test]
fn slack_histogram_accounts_every_merge() {
    let workload = workloads::wstate(118);
    let estimate = LogicalEstimate::for_workload(&workload, 1e-3, 1e-2);
    let schedule = ProgramSchedule::compile(&workload, &estimate, 300, SEED);
    let report = run_policy(&schedule, PolicySpec::Active);
    assert_eq!(report.slack.count(), report.merges);
    assert_eq!(report.slack.bins().iter().sum::<u64>(), report.merges);
    // Slack is a phase difference: bounded by the slowest involved
    // cycle (calibration spread + jitter stay within ~4% of nominal).
    let bound = 1.05 * HardwareConfig::ibm().cycle_time_ns();
    assert!(
        report.slack.max_ns() < bound,
        "max slack {} exceeds a cycle",
        report.slack.max_ns()
    );
}

#[test]
fn empty_program_report_is_all_zeros() {
    // Regression: a schedule with no merge events must report 0.0 (not
    // NaN) for both ratio metrics.
    let workload = workloads::qft(20);
    let estimate = LogicalEstimate::for_workload(&workload, 1e-3, 1e-2);
    let mut schedule = ProgramSchedule::compile(&workload, &estimate, 10, SEED);
    schedule.events.clear();
    let report = run_policy(&schedule, PolicySpec::Passive);
    assert_eq!(report.merges, 0);
    assert_eq!(report.total_ns, 0);
    assert_eq!(report.overhead_percent(), 0.0);
    assert_eq!(report.mean_slack_ns(), 0.0);
}
