//! Cross-crate integration tests: from policy planning through circuit
//! generation, noise, sampling and decoding.

use ftqc::decoder::DecoderKind;
use ftqc::experiments::EvalPipeline;
use ftqc::noise::{CircuitNoiseModel, HardwareConfig};
use ftqc::sim::{verify_deterministic, DetectorErrorModel};
use ftqc::surface::{LatticeSurgeryConfig, LsBasis, MemoryConfig, OBS_MERGED};
use ftqc::sync::{Controller, PolicySpec, SyncContext};

#[test]
fn every_policy_yields_valid_deterministic_circuits() {
    let hw = HardwareConfig::ibm();
    let t = hw.cycle_time_ns();
    let policies: Vec<(PolicySpec, f64, f64)> = vec![
        (PolicySpec::Passive, t, t),
        (PolicySpec::Active, t, t),
        (PolicySpec::ActiveIntra, t, t),
        (PolicySpec::ExtraRounds, 1000.0, 1150.0),
        (PolicySpec::hybrid(400.0), 1000.0, 1325.0),
        (PolicySpec::dynamic_hybrid(), 1000.0, 1325.0),
    ];
    for (policy, tp, tpp) in policies {
        for basis in [LsBasis::Z, LsBasis::X] {
            let mut cfg = LatticeSurgeryConfig::new(3, &hw);
            cfg.basis = basis;
            let ctx = SyncContext::new(800.0, tp, tpp, 4).expect("valid context");
            cfg.plan = policy.plan(&ctx).expect("plannable");
            cfg.lagging_round_stretch_ns = (tpp - tp).max(0.0);
            let circuit = CircuitNoiseModel::ideal().apply(&cfg.build());
            circuit.validate().expect("structurally valid");
            verify_deterministic(&circuit, 6)
                .unwrap_or_else(|e| panic!("{policy} / {basis:?}: {e}"));
        }
    }
}

#[test]
fn controller_schedule_matches_circuit_plan_totals() {
    // The discrete-event controller and the circuit generator must
    // agree on how much time a plan inserts.
    let spec = PolicySpec::hybrid(400.0);
    let plan = spec
        .plan(&SyncContext::new(1000.0, 1000.0, 1325.0, 8).unwrap())
        .unwrap();
    assert_eq!(plan.extra_rounds, 4);
    let mut ctl = Controller::new();
    let a = ctl.add_patch(1000, 0);
    let b = ctl.add_patch(1325, 325);
    let tick = ctl.synchronize(&[a, b], &spec, 8).unwrap();
    assert_eq!(ctl.status(a).unwrap().cycle_end_tick, tick);
    assert_eq!(ctl.status(b).unwrap().cycle_end_tick, tick);
}

#[test]
fn dem_is_graphlike_for_all_experiment_circuits() {
    let hw = HardwareConfig::google();
    for d in [3u32, 5] {
        for basis in [LsBasis::Z, LsBasis::X] {
            let mut cfg = LatticeSurgeryConfig::new(d, &hw);
            cfg.basis = basis;
            let circuit = CircuitNoiseModel::standard(1e-3, &hw).apply(&cfg.build());
            let (_, stats) = DetectorErrorModel::from_circuit(&circuit, true);
            assert_eq!(
                stats.dropped_hyperedges, 0,
                "d={d} {basis:?}: non-graphlike mechanisms"
            );
        }
    }
}

#[test]
fn memory_ler_improves_with_distance_for_both_decoders() {
    let hw = HardwareConfig::ibm();
    let mut rates = Vec::new();
    for d in [3u32, 5] {
        // One prepared pipeline per distance; both decoder kinds share
        // its circuit, DEM and graph.
        let pipeline = EvalPipeline::memory(MemoryConfig::new(d, d + 1, &hw))
            .decoder(DecoderKind::UnionFind)
            .shots(25_000)
            .seed(3)
            .threads(2)
            .build();
        let uf = pipeline.run();
        let mw = pipeline.run_with(DecoderKind::Mwpm);
        rates.push((uf[0].rate(), mw[0].rate()));
    }
    assert!(
        rates[1].0 < rates[0].0,
        "UF: d=5 {} vs d=3 {}",
        rates[1].0,
        rates[0].0
    );
    assert!(
        rates[1].1 < rates[0].1,
        "MWPM: d=5 {} vs d=3 {}",
        rates[1].1,
        rates[0].1
    );
}

#[test]
fn slack_hurts_and_sync_policies_recover() {
    // The core claim, end to end at small scale: ideal <= active and
    // active <= passive (with statistical slack).
    let hw = HardwareConfig::google();
    let t = hw.cycle_time_ns();
    let shots = 30_000;
    let run = |policy: PolicySpec, tau: f64, seed: u64| {
        let mut cfg = LatticeSurgeryConfig::new(3, &hw);
        cfg.plan = policy
            .plan(&SyncContext::new(tau, t, t, 4).unwrap())
            .unwrap();
        EvalPipeline::lattice_surgery(cfg)
            .decoder(DecoderKind::UnionFind)
            .shots(shots)
            .seed(seed)
            .threads(2)
            .build()
            .run()[OBS_MERGED as usize]
            .rate()
    };
    let ideal = run(PolicySpec::Passive, 0.0, 1);
    let passive = run(PolicySpec::Passive, 1000.0, 1);
    assert!(
        passive > ideal,
        "slack must cost fidelity: ideal {ideal} vs passive {passive}"
    );
}
