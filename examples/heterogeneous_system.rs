//! A heterogeneous FTQC system: surface-code compute patches, a qLDPC
//! memory with a longer syndrome cycle, and a magic-state cultivation
//! module — the three desynchronization sources of paper Section 3 —
//! coordinated by the runtime synchronization engine of Section 5.
//!
//! ```text
//! cargo run --release --example heterogeneous_system
//! ```

use ftqc::noise::HardwareConfig;
use ftqc::sync::{
    qldpc_cycle_time_ns, qldpc_slack, Controller, CultivationModel, PolicySpec, SyncEngine,
};

fn main() {
    let hw = HardwareConfig::ibm();
    let t_sc = hw.cycle_time_ns();
    let t_qldpc = qldpc_cycle_time_ns(hw.gate_1q_ns, hw.gate_2q_ns, hw.readout_ns + hw.reset_ns);
    println!("surface-code cycle: {t_sc:.0} ns, qLDPC cycle: {t_qldpc:.0} ns\n");

    // 1. How much slack does the qLDPC memory accumulate against the
    //    compute patches?
    println!("qLDPC phase drift (slack vs rounds):");
    for r in [1u32, 5, 9, 10, 20] {
        println!(
            "  after {r:>2} rounds: {:>6.0} ns",
            qldpc_slack(r, t_sc, t_qldpc)
        );
    }

    // 2. How much slack does cultivation introduce?
    let cult = CultivationModel::for_error_rate(1e-3, t_sc);
    let stats = cult.slack_distribution(t_sc, 50_000, 7);
    println!(
        "\ncultivation slack: median {:.0} ns, mean {:.0} ns, p95 {:.0} ns",
        stats.median_ns, stats.mean_ns, stats.p95_ns
    );

    // 3. The synchronization engine plans the merge between a compute
    //    patch, the memory patch and the cultivation output.
    let mut engine = SyncEngine::new();
    let compute = engine.register_patch(t_sc as u32);
    let memory = engine.register_patch(t_qldpc as u32);
    let t_state = engine.register_patch(t_sc as u32);
    engine.advance(12_743); // run freely for a while
    let outcome = engine
        .synchronize(&[compute, memory, t_state], &PolicySpec::hybrid(400.0), 12)
        .expect("plannable");
    println!(
        "\nsynchronization plans (slowest patch: {:?}):",
        outcome.slowest
    );
    for (id, plan) in &outcome.plans {
        println!(
            "  patch {:?}: {:>2} extra rounds, {:>6.1} ns idle ({})",
            id,
            plan.extra_rounds,
            plan.total_idle_ns(),
            plan.policy
        );
    }

    // 4. The discrete-event controller executes the schedule and all
    //    three patches land on the same tick.
    let mut ctl = Controller::new();
    let a = ctl.add_patch(t_sc as u32, 500);
    let b = ctl.add_patch(t_qldpc as u32, 1200);
    let c = ctl.add_patch(t_sc as u32, 0);
    let merge_tick = ctl
        .synchronize(&[a, b, c], &PolicySpec::hybrid(400.0), 12)
        .expect("plannable");
    println!("\ncontroller: all patches aligned at tick {merge_tick}");
    for id in [a, b, c] {
        let st = ctl.status(id).expect("valid");
        assert_eq!(st.cycle_end_tick, merge_tick);
        println!("  patch {id:?}: {} rounds completed", st.rounds_completed);
    }
}
