//! Quickstart: synchronize two surface-code patches and measure the
//! logical error rate of the Lattice Surgery operation under the
//! Passive and Active policies.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ftqc::decoder::{evaluate_ler, DecodingGraph, UfDecoder};
use ftqc::noise::{CircuitNoiseModel, HardwareConfig};
use ftqc::sim::DetectorErrorModel;
use ftqc::surface::{LatticeSurgeryConfig, OBS_MERGED, OBS_P};
use ftqc::sync::{plan_sync, SyncPolicy};

fn main() {
    let hw = HardwareConfig::google();
    let d = 5;
    let tau = 1000.0; // the leading patch is 1000 ns ahead
    let shots = 40_000;
    println!("Lattice Surgery at d = {d} on a {}-like system, slack {tau} ns\n", hw.name);
    for policy in [SyncPolicy::Passive, SyncPolicy::Active] {
        let t = hw.cycle_time_ns();
        let mut cfg = LatticeSurgeryConfig::new(d, &hw);
        cfg.plan = plan_sync(policy, tau, t, t, d + 1).expect("plannable");
        let circuit = CircuitNoiseModel::standard(1e-3, &hw).apply(&cfg.build());
        let (dem, _) = DetectorErrorModel::from_circuit(&circuit, true);
        let decoder = UfDecoder::new(DecodingGraph::from_dem(&dem));
        let ler = evaluate_ler(&circuit, &decoder, shots, 1024, 42, 2);
        println!(
            "{policy:<12} X_P: {}   X_P X_P': {}",
            ler[OBS_P as usize],
            ler[OBS_MERGED as usize]
        );
    }
    println!("\nActive slows the leading patch gradually, so the pre-merge");
    println!("idle errors stay below the decoder's correction capacity.");
}
