//! Quickstart: synchronize two surface-code patches and measure the
//! logical error rate of the Lattice Surgery operation under the
//! Passive and Active policies.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use ftqc::decoder::DecoderKind;
use ftqc::experiments::EvalPipeline;
use ftqc::noise::HardwareConfig;
use ftqc::surface::{LatticeSurgeryConfig, OBS_MERGED, OBS_P};
use ftqc::sync::{PolicySpec, SyncContext};

fn main() {
    let hw = HardwareConfig::google();
    let d = 5;
    let tau = 1000.0; // the leading patch is 1000 ns ahead
    let shots = 40_000;
    println!(
        "Lattice Surgery at d = {d} on a {}-like system, slack {tau} ns\n",
        hw.name
    );
    for policy in [PolicySpec::Passive, PolicySpec::Active] {
        let t = hw.cycle_time_ns();
        let mut cfg = LatticeSurgeryConfig::new(d, &hw);
        let ctx = SyncContext::new(tau, t, t, d + 1).expect("valid context");
        cfg.plan = policy.plan(&ctx).expect("plannable");
        let ler = EvalPipeline::lattice_surgery(cfg)
            .decoder(DecoderKind::UnionFind)
            .shots(shots)
            .seed(42)
            .threads(2)
            .build()
            .run();
        println!(
            "{policy:<12} X_P: {}   X_P X_P': {}",
            ler[OBS_P as usize], ler[OBS_MERGED as usize]
        );
    }
    println!("\nActive slows the leading patch gradually, so the pre-merge");
    println!("idle errors stay below the decoder's correction capacity.");
}
