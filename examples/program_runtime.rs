//! Whole-program runtime under every synchronization policy.
//!
//! Compiles each MQTBench workload's merge-event schedule from its
//! resource estimate, executes it on an IBM-like system with
//! calibration heterogeneity + per-round jitter + cultivation-driven
//! factory restarts, and prints the program-level runtime and sync
//! overhead per policy.
//!
//! ```text
//! cargo run --release --example program_runtime
//! ```

use ftqc::estimator::{workloads, LogicalEstimate};
use ftqc::noise::HardwareConfig;
use ftqc::runtime::{execute, ProgramSchedule, RuntimeConfig};
use ftqc::sync::PolicySpec;

fn main() {
    let hw = HardwareConfig::ibm();
    let seed = 2025;
    // The same parseable spec strings `repro runtime --policy` takes.
    let policies: Vec<PolicySpec> = [
        "passive",
        "active",
        "active-intra",
        "extra-rounds",
        "hybrid:eps=400,max=5",
        "dynamic-hybrid",
    ]
    .iter()
    .map(|s| s.parse().expect("valid policy spec"))
    .collect();
    println!(
        "{:<14} {:<52} {:>8} {:>12} {:>12} {:>10} {:>8}",
        "workload", "policy", "merges", "runtime(ms)", "idle(us)", "overhead%", "extras"
    );
    for workload in workloads::catalog() {
        let estimate = LogicalEstimate::for_workload(&workload, 1e-3, 1e-2);
        // 2000 merges keeps the demo under a second per workload; pass
        // u64::MAX to execute the full program.
        let schedule = ProgramSchedule::compile(&workload, &estimate, 2_000, seed);
        for policy in &policies {
            let report = execute(&schedule, &RuntimeConfig::new(&hw, policy.clone(), seed));
            println!(
                "{:<14} {:<52} {:>8} {:>12.3} {:>12.1} {:>10.3} {:>8}",
                report.workload,
                policy.to_string(),
                report.merges,
                report.total_ns as f64 / 1e6,
                report.sync_idle_ns as f64 / 1e3,
                report.overhead_percent(),
                report.extra_rounds,
            );
        }
        println!();
    }
}
