//! Compare the decoding stack on a surface-code memory: union-find vs
//! exact matching vs a capacity-limited lookup table, plus the
//! hierarchical LUT+MWPM decoder with its latency model (paper
//! Fig. 22's machinery).
//!
//! ```text
//! cargo run --release --example decoder_comparison
//! ```

use ftqc::decoder::{
    evaluate_ler, DecodingGraph, HierarchicalDecoder, LatencyModel, LutDecoder, MwpmDecoder,
    UfDecoder,
};
use ftqc::noise::{CircuitNoiseModel, HardwareConfig};
use ftqc::sim::{sample_batch, DetectorErrorModel};
use ftqc::surface::MemoryConfig;

fn main() {
    let hw = HardwareConfig::ibm();
    let d = 3;
    let shots = 50_000;
    let circuit = CircuitNoiseModel::standard(2e-3, &hw).apply(&MemoryConfig::new(d, d + 1, &hw).build());
    let (dem, stats) = DetectorErrorModel::from_circuit(&circuit, true);
    println!(
        "d = {d} memory: {} detectors, {} error mechanisms ({} dropped)\n",
        circuit.num_detectors(),
        dem.mechanisms().len(),
        stats.dropped_hyperedges
    );
    let graph = DecodingGraph::from_dem(&dem);

    let uf = UfDecoder::new(graph.clone());
    let mwpm = MwpmDecoder::new(graph.clone());
    let lut = LutDecoder::train(&circuit, 50_000, 1, 3 * 1024);
    println!("decoder     LER (observable 0)");
    for (name, ler) in [
        ("union-find", evaluate_ler(&circuit, &uf, shots, 1024, 9, 2)),
        ("MWPM", evaluate_ler(&circuit, &mwpm, shots, 1024, 9, 2)),
        ("LUT (3KB)", evaluate_ler(&circuit, &lut, shots, 1024, 9, 2)),
    ] {
        println!("{name:<12}{}", ler[0]);
    }

    // Hierarchical decoding with modelled latency.
    let hier = HierarchicalDecoder::new(
        LutDecoder::train(&circuit, 50_000, 1, 3 * 1024),
        MwpmDecoder::new(graph),
        LatencyModel::new(vec![600.0, 900.0, 1500.0]),
        5,
    );
    let probe = sample_batch(&circuit, 20_000, 3);
    let mut latency = 0.0;
    for s in 0..probe.shots {
        latency += hier.decode_timed(&probe.flagged_detectors(s)).latency_ns;
    }
    println!(
        "\nhierarchical decoder: hit rate {:.3}, mean latency {:.0} ns",
        hier.hit_rate(),
        latency / probe.shots as f64
    );
}
