//! Compare the decoding stack on a surface-code memory: union-find vs
//! exact matching vs a capacity-limited lookup table, plus the
//! hierarchical LUT+MWPM decoder with its latency model (paper
//! Fig. 22's machinery). Every decoder is built through the unified
//! [`DecoderKind`]/[`EvalPipeline`] layer over one shared
//! circuit → DEM → graph preparation.
//!
//! ```text
//! cargo run --release --example decoder_comparison
//! ```

use ftqc::decoder::{DecoderKind, HierarchicalDecoder, LatencyModel};
use ftqc::experiments::EvalPipeline;
use ftqc::noise::HardwareConfig;
use ftqc::sim::sample_batch;
use ftqc::surface::MemoryConfig;

fn main() {
    let hw = HardwareConfig::ibm();
    let d = 3;
    let shots = 50_000;
    let pipeline = EvalPipeline::memory(MemoryConfig::new(d, d + 1, &hw))
        .physical_error(2e-3)
        .decoder(DecoderKind::UnionFind)
        .decoder_seed(1)
        .shots(shots)
        .seed(9)
        .threads(2)
        .build();
    println!(
        "d = {d} memory: {} detectors, {} error mechanisms ({} dropped)\n",
        pipeline.circuit().num_detectors(),
        pipeline.dem().mechanisms().len(),
        pipeline.dem_stats().dropped_hyperedges
    );

    println!("decoder     LER (observable 0)");
    for (name, kind) in [
        ("union-find", DecoderKind::UnionFind),
        ("MWPM", DecoderKind::Mwpm),
        (
            "LUT (3KB)",
            DecoderKind::Lut {
                train_shots: 50_000,
                capacity_bytes: 3 * 1024,
            },
        ),
    ] {
        println!("{name:<12}{}", pipeline.run_with(kind)[0]);
    }

    // Hierarchical decoding with modelled latency: assembled from
    // pipeline-built parts so the LUT and matcher share the graph.
    let lut = pipeline
        .build_decoder(DecoderKind::Lut {
            train_shots: 50_000,
            capacity_bytes: 3 * 1024,
        })
        .into_lut()
        .expect("lut");
    let mwpm = pipeline
        .build_decoder(DecoderKind::Mwpm)
        .into_mwpm()
        .expect("mwpm");
    let hier =
        HierarchicalDecoder::new(lut, mwpm, LatencyModel::new(vec![600.0, 900.0, 1500.0]), 5);
    let probe = sample_batch(pipeline.circuit(), 20_000, 3);
    let mut latency = 0.0;
    for s in 0..probe.shots {
        latency += hier.decode_timed(&probe.flagged_detectors(s)).latency_ns;
    }
    println!(
        "\nhierarchical decoder: hit rate {:.3}, mean latency {:.0} ns",
        hier.hit_rate(),
        latency / probe.shots as f64
    );
}
