//! Record a cross-layer telemetry trace of the full stack — sampling,
//! batch decoding, streaming commits, adaptive stopping, and runtime
//! merges — then export it as Chrome trace-event JSON (open the file in
//! Perfetto or `chrome://tracing`) alongside an aggregated summary.
//!
//! ```text
//! cargo run --release --example traced_runtime [OUT_DIR]
//! ```
//!
//! Writes `OUT_DIR/traced_runtime.trace.json` and
//! `OUT_DIR/traced_runtime.summary.json` (default `OUT_DIR`: `results`),
//! and prints the span-attribution table — where the nanoseconds went.

use ftqc::decoder::{DecoderKind, StreamingConfig};
use ftqc::estimator::{workloads, LogicalEstimate};
use ftqc::experiments::EvalPipeline;
use ftqc::noise::HardwareConfig;
use ftqc::runtime::{execute, ProgramSchedule, RuntimeConfig};
use ftqc::sim::{sample_batch, RoundSchedule, RoundStream, StopRule};
use ftqc::surface::MemoryConfig;
use ftqc::sync::PolicySpec;
use ftqc::telemetry::{self, RingSink};
use std::sync::Arc;

fn main() {
    let out_dir = std::env::args().nth(1).unwrap_or_else(|| "results".into());
    std::fs::create_dir_all(&out_dir).expect("create output directory");

    // Everything recorded between install and uninstall lands in the
    // sink; with no sink installed the same code records nothing and
    // pays a single atomic load per call site.
    let sink = Arc::new(RingSink::new());
    telemetry::install(sink.clone());
    telemetry::annotate("example", "traced_runtime");

    // --- Layers 1, 2, 4: sample + batch-decode a d=3 memory under an
    // adaptive stop rule (spans: sim/sample_batch, sim/scan_block,
    // decode/count_batch, decode/union-find; events: exp/adaptive_batch).
    let hw = HardwareConfig::ibm();
    let pipeline = EvalPipeline::memory(MemoryConfig::new(3, 4, &hw))
        .physical_error(3e-3)
        .decoder(DecoderKind::UnionFind)
        .batch_shots(512)
        .seed(7)
        .build();
    let outcome = pipeline.run_adaptive(&StopRule::max_shots(2_048));
    println!("adaptive run: {} shots decoded", outcome.shots());

    // --- Layer 2, streaming path: push a few shots round by round
    // through the sliding-window decoder (events: stream/commit, with
    // window occupancy and running decode count).
    let schedule = RoundSchedule::from_circuit(pipeline.circuit());
    let batch = sample_batch(pipeline.circuit(), 64, 7);
    let mut rounds = RoundStream::new(&schedule);
    let mut stream = StreamingConfig::exact(2).build(pipeline.decoder(), &schedule);
    let mut defects = Vec::with_capacity(schedule.max_round_len());
    rounds.begin_batch(&batch);
    for shot in 0..batch.shots.min(16) {
        rounds.begin_shot(shot);
        stream.begin_shot();
        while rounds.next_round_into(&batch, &mut defects).is_some() {
            let _ = stream.push_round(&defects);
        }
        let _ = stream.finish_shot();
    }

    // --- Layer 3: execute one workload's merge schedule under two
    // policies (spans: runtime/execute; events: runtime/merge with
    // per-merge slack and attributed idle).
    let workload = &workloads::catalog()[0];
    let estimate = LogicalEstimate::for_workload(workload, 1e-3, 1e-2);
    let program = ProgramSchedule::compile(workload, &estimate, 2_000, 7);
    for spec in ["passive", "dynamic-hybrid"] {
        let policy: PolicySpec = spec.parse().expect("valid policy spec");
        let report = execute(&program, &RuntimeConfig::new(&hw, policy, 7));
        println!(
            "{}: {} merges under {spec}, overhead {:.3}%",
            report.workload,
            report.merges,
            report.overhead_percent(),
        );
    }

    // --- Export: one recording, two views.
    telemetry::uninstall();
    let snapshot = sink.snapshot();
    let trace_path = format!("{out_dir}/traced_runtime.trace.json");
    std::fs::write(&trace_path, telemetry::chrome_trace_json(&snapshot)).expect("write trace file");
    let summary = telemetry::summarize(&snapshot);
    let summary_path = format!("{out_dir}/traced_runtime.summary.json");
    std::fs::write(&summary_path, telemetry::summary_json(&summary)).expect("write summary file");

    println!(
        "\n{:<24} {:>8} {:>12} {:>12} {:>12}",
        "span", "count", "p50 (ns)", "p99 (ns)", "total (us)"
    );
    for span in &summary.spans {
        println!(
            "{:<24} {:>8} {:>12.0} {:>12.0} {:>12.1}",
            span.name,
            span.count,
            span.p50_ns,
            span.p99_ns,
            span.total_ns / 1e3,
        );
    }
    println!();
    for counter in &summary.counters {
        println!("{:<24} {:>8}", counter.name, counter.total);
    }
    println!("\nwrote {trace_path} (+ {summary_path}) — load the trace in Perfetto");
}
