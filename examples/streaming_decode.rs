//! Stream a surface-code memory shot round by round through the
//! sliding-window decoder, printing each commit as it is finalized,
//! then verify the whole batch: exact-mode streaming with any window
//! is bit-identical to batch decoding (the telescoping-delta guarantee
//! behind `StreamingDecoder`), while fused mode decodes only the
//! active window — O(window) per round — at a small, measured
//! accuracy delta.
//!
//! ```text
//! cargo run --release --example streaming_decode
//! ```

use ftqc::decoder::{
    count_batch_errors, count_batch_errors_streaming, DecoderKind, StreamingConfig,
};
use ftqc::experiments::EvalPipeline;
use ftqc::noise::HardwareConfig;
use ftqc::sim::{batch_plan, sample_batch, RoundSchedule, RoundStream};
use ftqc::surface::MemoryConfig;

fn main() {
    let hw = HardwareConfig::ibm();
    let d = 3;
    let pipeline = EvalPipeline::memory(MemoryConfig::new(d, d + 1, &hw))
        .physical_error(3e-3)
        .decoder(DecoderKind::UnionFind)
        .seed(5)
        .build();
    let decoder = pipeline.decoder();
    let schedule = RoundSchedule::from_circuit(pipeline.circuit());
    println!(
        "d = {d} memory: {} detectors across {} rounds (largest round: {} detectors)\n",
        schedule.num_detectors(),
        schedule.num_rounds(),
        schedule.max_round_len(),
    );

    // --- One shot, narrated: window W = 2 finalizes round r when
    // round r + 1 arrives.
    let batch = sample_batch(pipeline.circuit(), 64, 5);
    let shot = (0..batch.shots)
        .find(|&s| batch.hamming_weight(s) >= 2)
        .expect("a shot with defects");
    let mut rounds = RoundStream::new(&schedule);
    let mut stream = StreamingConfig::exact(2).build(decoder, &schedule);
    rounds.begin_batch(&batch);
    rounds.begin_shot(shot);
    stream.begin_shot();
    let mut defects = Vec::new();
    println!("shot {shot}, window W = {}:", stream.window());
    while let Some(r) = rounds.next_round_into(&batch, &mut defects) {
        print!("  round {r} arrives ({} defects)", defects.len());
        match stream.push_round(&defects) {
            Some(c) => println!(
                " -> commit round {} (delta {:#04b}, cumulative {:#04b})",
                c.round, c.correction, c.cumulative
            ),
            None => println!(" -> window filling, nothing committed"),
        }
    }
    let streamed = stream.finish_shot();
    println!(
        "  finish_shot drains the tail -> total correction {streamed:#04b} \
         ({} decoder calls for {} rounds)\n",
        stream.decode_count(),
        schedule.num_rounds(),
    );

    // --- Whole-batch identity: per-observable error counts through
    // the exact streaming path equal the batch path, for any window.
    let plan = batch_plan(20_000, 512);
    let batch_counts = count_batch_errors(pipeline.circuit(), decoder, &plan, 7, 2);
    for window in [1, 2, schedule.num_rounds()] {
        let streamed_counts = count_batch_errors_streaming(
            pipeline.circuit(),
            decoder,
            StreamingConfig::exact(window),
            &plan,
            7,
            2,
        );
        assert_eq!(streamed_counts, batch_counts);
        let errors: u64 = streamed_counts.iter().map(|b| b[0]).sum();
        println!(
            "W = {window}: 20k shots streamed, observable-0 errors = {errors} \
             (bit-identical to batch decode)"
        );
    }

    // --- Fused mode: O(window) per round instead of O(prefix), in
    // exchange for a small accuracy delta (defects expelled past the
    // trailing boundary can no longer re-pair with later arrivals).
    let batch_errors: u64 = batch_counts.iter().map(|b| b[0]).sum();
    let fused_counts = count_batch_errors_streaming(
        pipeline.circuit(),
        decoder,
        StreamingConfig::fused(2, 1),
        &plan,
        7,
        2,
    );
    let fused_errors: u64 = fused_counts.iter().map(|b| b[0]).sum();
    println!(
        "fused W = 2, overlap 1: observable-0 errors = {fused_errors} vs {batch_errors} \
         batch (delta {:+}) — bounded per-round cost, measured accuracy trade",
        fused_errors as i64 - batch_errors as i64,
    );
}
