//! Estimate how often a fault-tolerant program needs synchronized
//! Lattice Surgery (paper Fig. 3c), from QASM parsing through logical
//! resource estimation.
//!
//! ```text
//! cargo run --release --example workload_estimation
//! ```

use ftqc::estimator::{workloads, LogicalEstimate};
use ftqc::qasm::Program;

fn main() {
    // Any OpenQASM 2 source works; here we use the built-in catalog.
    println!(
        "{:<15} {:>8} {:>10} {:>10} {:>11} {:>6}",
        "workload", "T count", "cycles", "sync/cycle", "phys qubits", "d"
    );
    for w in workloads::catalog() {
        let est = LogicalEstimate::for_workload(&w, 1e-3, 1e-2);
        println!(
            "{:<15} {:>8} {:>10} {:>10.2} {:>11} {:>6}",
            w.name,
            est.magic_states,
            est.logical_cycles,
            est.syncs_per_cycle,
            est.physical_qubits,
            est.code_distance
        );
    }

    // The parser handles external circuits too.
    let custom = r#"
        OPENQASM 2.0;
        include "qelib1.inc";
        qreg q[4];
        h q[0];
        ccx q[0], q[1], q[2];
        rz(0.41) q[3];
        cx q[2], q[3];
    "#;
    let analysis = Program::parse(custom).expect("valid QASM").analyze(1e-10);
    println!(
        "\ncustom circuit: {} gates, {} T gates, depth {}",
        analysis.gate_count, analysis.t_count, analysis.depth
    );
}
